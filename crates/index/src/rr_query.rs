//! Algorithm 2 — `QueryRR`: answer a KB-TIM query from the RR index.
//!
//! For each query keyword `w`, load the first `θ^Q_w = θ^Q·p_w` RR sets
//! (a sequential prefix read, ids are ordinals) and the whole inverted
//! list `L_w`; remap per-keyword RR ids into one global id space; run the
//! shared greedy maximum-coverage loop over the merged instance. Lemma 2
//! guarantees the prefix mix is an unbiased WRIS sample, so Theorem 2's
//! approximation bound carries over.
//!
//! Keyword segments load and decode **in parallel** (one job per query
//! keyword × index shard on the index's pool, keyword-major); per-job
//! results carry precomputed global id bases and merge in job order —
//! for each keyword, its shards in shard order — so the assembled
//! coverage instance — and therefore the answer — is identical for
//! every thread count *and every shard count*: users are
//! range-partitioned across shards and keep their global-build rr-id
//! lists, so the shard-order gather is exactly the monolithic decode.
//!
//! The whole data path is flat and zero-copy: block bytes arrive as
//! borrowed [`kbtim_storage::BlockSource`] views (or through pooled
//! staging buffers on the file backend), each keyword's `L_w` decodes
//! straight into a pooled [`format::IlCsr`] arena, the
//! truncated/remapped per-keyword lists stay CSR, and the merged
//! instance is a dense [`InvertedIndex`] built by one counting pass and
//! one fill pass over recycled arenas — no per-user allocation, no hash
//! probes in the greedy loop, and ~zero allocation once the scratch
//! pool is warm.

use crate::format::{self, IlCsr};
use crate::scratch::{KeywordArena, QueryScratch};
use crate::{IndexError, KbtimIndex, QueryCtx, QueryOutcome, QueryStats};
use kbtim_core::invindex::{InvertedIndex, InvertedIndexBuilder};
use kbtim_core::maxcover::greedy_max_cover_inverted_until;
use kbtim_topics::{Query, TopicId};
use std::time::Instant;

impl KbtimIndex {
    /// Answer `query` with Algorithm 2 (works on both index variants).
    pub fn query_rr(&self, query: &Query) -> Result<QueryOutcome, IndexError> {
        self.query_rr_ctx(query, &QueryCtx::default())
    }

    /// [`KbtimIndex::query_rr`] under an execution context: the
    /// deadline (if any) is checked after the keyword decode and once
    /// per greedy round, aborting with
    /// [`IndexError::DeadlineExceeded`] — never with partial seeds.
    /// The `engine.decode` / `engine.merge` / `engine.greedy`
    /// failpoints fire at the matching stage boundaries.
    pub fn query_rr_ctx(&self, query: &Query, ctx: &QueryCtx) -> Result<QueryOutcome, IndexError> {
        let started = Instant::now();
        let io_before = self.io_stats().snapshot();
        let (phi_q, budget) = self.query_budget(query);
        if budget.is_empty() {
            return Ok(empty_outcome(started));
        }
        if kbtim_fault::inject("engine.decode") {
            return Err(IndexError::Injected("engine.decode"));
        }

        let codec = self.meta().codec;
        // Global id base of each keyword's RR prefix (prefix sums of the
        // shares) — fixed up front so keyword scans are independent.
        let mut bases = Vec::with_capacity(budget.len());
        let mut base = 0u64;
        for &(_, share) in &budget {
            bases.push(base);
            base += share;
        }
        let theta_q = base;

        // Scatter-gather: one job per (keyword × shard), keyword-major,
        // so gathering in job order is "for each keyword, for each shard
        // in shard order" — the exact concatenation that reproduces the
        // monolithic decode (each user lives in one shard and keeps its
        // global-build rr-id list there). With one shard this is the
        // per-keyword fan-out unchanged.
        let num_shards = self.num_shards();
        let pool = self.pool();
        type KeywordScan = (IlCsr, u64);
        let scans: Vec<Result<KeywordScan, IndexError>> = pool.map_shards_with(
            budget.len() * num_shards,
            || self.scratch.guard(),
            |guard, i| {
                let s: &mut QueryScratch = &mut *guard;
                let (topic, share) = budget[i / num_shards];
                let base = bases[i / num_shards];
                let source = self.source_in(i % num_shards, topic)?;

                // Prefix of the offset table → byte length of the RR prefix.
                let off_bytes =
                    source.read_range_in(format::RR_OFF_BLOCK, share * 8, 8, &mut s.bytes_a)?;
                let prefix_len = u64::from_le_bytes(off_bytes.try_into().expect("8 bytes"));

                // The RR-set prefix itself (bulk-decoded into the pooled
                // arena for faithful query-time cost; greedy itself runs
                // off the inverted lists).
                let rr_bytes =
                    source.read_range_in(format::RR_BLOCK, 0, prefix_len, &mut s.bytes_a)?;
                format::decode_rr_prefix_into(
                    rr_bytes,
                    share,
                    codec,
                    &mut s.rr_members,
                    &mut s.rr_ends,
                )?;
                debug_assert_eq!(s.rr_ends.len() as u64, share + 1);

                // Whole L_w decoded into one pooled CSR arena, then
                // truncated to the prefix and remapped to global ids —
                // still flat, into a pooled output CSR.
                let il_bytes = source.read_block_in(format::IL_BLOCK, &mut s.bytes_b)?;
                format::decode_il_csr_into(il_bytes, codec, &mut s.il)?;
                let full = &s.il;
                let mut remapped = self.scratch.take_csr();
                for j in 0..full.len() {
                    let list = full.list(j);
                    let cut = list.partition_point(|&id| (id as u64) < share);
                    if cut == 0 {
                        continue;
                    }
                    remapped.ids.extend(list[..cut].iter().map(|&id| (base + id as u64) as u32));
                    remapped.close_list(full.users[j]);
                }
                // θ^Q_w logical sets load once per keyword, fragmented
                // across the shards — charge the count to one job so
                // `rr_sets_loaded == θ^Q` for every shard count.
                Ok((remapped, if i % num_shards == 0 { share } else { 0 }))
            },
        );

        let mut keyword_csrs = Vec::with_capacity(scans.len());
        let mut rr_sets_loaded = 0u64;
        for scan in scans {
            let (remapped, share) = scan?;
            rr_sets_loaded += share;
            keyword_csrs.push(remapped);
        }

        // Early aborts past this point hand the leased CSRs back so the
        // scratch books survive fault storms without regrowing.
        let recycle = |csrs: Vec<IlCsr>| {
            for csr in csrs {
                self.scratch.put_csr(csr);
            }
        };
        if let Err(e) = ctx.check() {
            recycle(keyword_csrs);
            return Err(e);
        }
        if kbtim_fault::inject("engine.merge") {
            recycle(keyword_csrs);
            return Err(IndexError::Injected("engine.merge"));
        }

        // Merge in keyword order: per-user lists concatenate with
        // ascending global ids, exactly as the old hash-map merge did —
        // but via one counting pass and one fill pass over dense arrays
        // recycled from the previous query.
        let mut builder =
            InvertedIndexBuilder::recycled(self.meta().num_users, self.scratch.take_arenas());
        for csr in &keyword_csrs {
            for j in 0..csr.len() {
                builder.count(csr.users[j], csr.list(j).len() as u32);
            }
        }
        let mut filler = builder.fill();
        for csr in &keyword_csrs {
            for j in 0..csr.len() {
                filler.push_list(csr.users[j], csr.list(j).iter().copied());
            }
        }
        let inverted: InvertedIndex = filler.finish();

        if kbtim_fault::inject("engine.greedy") {
            self.scratch.put_arenas(inverted.into_arenas());
            recycle(keyword_csrs);
            return Err(IndexError::Injected("engine.greedy"));
        }
        let cover =
            greedy_max_cover_inverted_until(&inverted, theta_q, query.k(), pool, &|| ctx.expired());
        self.scratch.put_arenas(inverted.into_arenas());
        recycle(keyword_csrs);
        let Some(cover) = cover else {
            return Err(IndexError::DeadlineExceeded);
        };
        let estimated_influence =
            if theta_q == 0 { 0.0 } else { cover.covered as f64 / theta_q as f64 * phi_q };
        Ok(QueryOutcome {
            seeds: cover.seeds,
            marginal_gains: cover.marginal_gains,
            coverage: cover.covered,
            estimated_influence,
            stats: QueryStats {
                theta_q,
                rr_sets_loaded,
                partitions_loaded: 0,
                io: self.io_stats().snapshot().since(&io_before),
                elapsed: started.elapsed(),
            },
        })
    }
}

impl KbtimIndex {
    /// Decode each wanted keyword **once** into a shared
    /// [`KeywordArena`] — the batch planner's entry point.
    ///
    /// `wants` pairs each keyword with the widest `θ^Q_w` share any
    /// request in the batch asks of it. Sorted, duplicate-free input is
    /// used as-is; anything else is normalized first (sorted ascending,
    /// duplicate topics merged at their widest share), so the arena's
    /// lookup invariant holds for any caller. Per keyword, one fan-out
    /// shard (on the
    /// index-owned pool) reads and decodes the RR prefix at that widest
    /// share plus the whole inverted list `L_w` into a pool-leased CSR.
    /// The planner then serves any number of requests from the one
    /// arena — [`KbtimIndex::merge_keywords`] once per distinct keyword
    /// set, [`KbtimIndex::query_merged`] once per request
    /// ([`KbtimIndex::query_rr_prepared`] /
    /// [`KbtimIndex::query_irr_prepared`] are the single-request form
    /// of the same pair); return the arena with
    /// [`KbtimIndex::recycle_keywords`] when the batch completes.
    ///
    /// Decoded bytes are identical to what the per-request paths decode,
    /// so prepared answers are bit-identical to unbatched ones.
    pub fn decode_keywords(&self, wants: &[(TopicId, u64)]) -> Result<KeywordArena, IndexError> {
        // KeywordArena::csr binary-searches `topics`, so the build order
        // must be strictly ascending — normalize rather than trust the
        // caller (a silently unsorted arena would misreport healthy
        // keywords as missing).
        let owned: Vec<(TopicId, u64)>;
        let wants = if wants.windows(2).all(|w| w[0].0 < w[1].0) {
            wants
        } else {
            let mut sorted = wants.to_vec();
            sorted.sort_by_key(|&(topic, _)| topic);
            sorted.dedup_by(|next, kept| {
                if next.0 == kept.0 {
                    kept.1 = kept.1.max(next.1);
                    true
                } else {
                    false
                }
            });
            owned = sorted;
            &owned
        };
        if kbtim_fault::inject("engine.decode") {
            return Err(IndexError::Injected("engine.decode"));
        }
        let codec = self.meta().codec;
        // Keyword-major (keyword × shard) fan-out, like `query_rr_ctx`:
        // gathering appends each keyword's shard CSRs in shard order,
        // which reproduces the monolithic `L_w` exactly.
        let num_shards = self.num_shards();
        let scans: Vec<Result<IlCsr, IndexError>> = self.pool().map_shards_with(
            wants.len() * num_shards,
            || self.scratch.guard(),
            |guard, i| {
                let s: &mut QueryScratch = &mut *guard;
                let (topic, share) = wants[i / num_shards];
                let source = self.source_in(i % num_shards, topic)?;
                // RR prefix at the widest share in the batch, decoded
                // once for every consumer (faithful query-time cost, as
                // in `query_rr`; the answers come off the inverted
                // lists).
                if share > 0 {
                    let off_bytes =
                        source.read_range_in(format::RR_OFF_BLOCK, share * 8, 8, &mut s.bytes_a)?;
                    let prefix_len = u64::from_le_bytes(off_bytes.try_into().expect("8 bytes"));
                    let rr_bytes =
                        source.read_range_in(format::RR_BLOCK, 0, prefix_len, &mut s.bytes_a)?;
                    format::decode_rr_prefix_into(
                        rr_bytes,
                        share,
                        codec,
                        &mut s.rr_members,
                        &mut s.rr_ends,
                    )?;
                }
                // The whole L_w into a pool-leased CSR the arena keeps
                // (truncation to each request's share happens at merge
                // time, read-only).
                let il_bytes = source.read_block_in(format::IL_BLOCK, &mut s.bytes_b)?;
                let mut csr = self.scratch.take_csr();
                format::decode_il_csr_into(il_bytes, codec, &mut csr)?;
                Ok(csr)
            },
        );
        let mut arena = KeywordArena::default();
        let mut scans = scans.into_iter();
        for &(topic, share) in wants {
            // Shard 0's CSR absorbs the rest in shard order; users are
            // range-partitioned, so the result is the monolithic block.
            let mut csr = scans.next().expect("one scan per (keyword, shard)")?;
            for _ in 1..num_shards {
                let extra = scans.next().expect("one scan per (keyword, shard)")?;
                csr.append(&extra);
                self.scratch.put_csr(extra);
            }
            arena.topics.push(topic);
            arena.csrs.push(csr);
            arena.rr_sets_decoded += share;
        }
        Ok(arena)
    }

    /// Return a finished batch's arena CSRs to the scratch pool.
    pub fn recycle_keywords(&self, arena: KeywordArena) {
        for csr in arena.csrs {
            self.scratch.put_csr(csr);
        }
    }

    /// Build a keyword set's merged coverage instance from a batch's
    /// shared [`KeywordArena`] — everything of Algorithm 2 that depends
    /// on the keyword set alone.
    ///
    /// The Eqn-11 budget, the per-keyword global id bases, and the
    /// merged [`InvertedIndex`] are all functions of `query.topics()` —
    /// `Q.k` only bounds the greedy loop — so batched requests sharing
    /// a keyword set share one [`MergedQuery`] and differ only in their
    /// [`KbtimIndex::query_merged`] call. The two flat passes here (the
    /// `MemoryIndex` merge, against a per-batch arena) truncate each
    /// keyword's full CSR to its `θ^Q_w` share and remap into the
    /// query's global id space in keyword order, producing an instance
    /// bit-identical to the per-request path's remapped-CSR
    /// concatenation.
    pub fn merge_keywords(
        &self,
        query: &Query,
        arena: &KeywordArena,
    ) -> Result<MergedQuery, IndexError> {
        let (phi_q, budget) = self.query_budget(query);
        self.merge_budgeted(phi_q, &budget, arena)
    }

    /// [`KbtimIndex::merge_keywords`] with the Eqn-11 budget already
    /// computed — the batch planner derives each group's budget while
    /// building the decode union and must not pay for it twice.
    pub(crate) fn merge_budgeted(
        &self,
        phi_q: f64,
        budget: &[(TopicId, u64)],
        arena: &KeywordArena,
    ) -> Result<MergedQuery, IndexError> {
        self.merge_budgeted_over(self.meta().num_users, phi_q, budget, arena)
    }

    /// [`KbtimIndex::merge_budgeted`] over an explicit user universe —
    /// the delta tier unions in-memory keyword overlays with this
    /// index's segments, and the union's `|V|` (base plus ingested
    /// users) sizes the merged instance, not the catalog's.
    pub(crate) fn merge_budgeted_over(
        &self,
        num_users: u32,
        phi_q: f64,
        budget: &[(TopicId, u64)],
        arena: &KeywordArena,
    ) -> Result<MergedQuery, IndexError> {
        if kbtim_fault::inject("engine.merge") {
            return Err(IndexError::Injected("engine.merge"));
        }
        let mut builder = InvertedIndexBuilder::recycled(num_users, self.scratch.take_arenas());
        let mut theta_q = 0u64;
        for &(topic, share) in budget {
            let il = arena.csr(topic).ok_or_else(|| {
                IndexError::Corrupt(format!("keyword {topic} missing from the batch arena"))
            })?;
            for j in 0..il.len() {
                let cut = il.list(j).partition_point(|&id| (id as u64) < share);
                builder.count(il.users[j], cut as u32);
            }
            theta_q += share;
        }
        let mut filler = builder.fill();
        let mut base = 0u64;
        for &(topic, share) in budget {
            let il = arena.csr(topic).expect("presence checked in the count pass");
            for j in 0..il.len() {
                let list = il.list(j);
                let cut = list.partition_point(|&id| (id as u64) < share);
                filler.push_list(
                    il.users[j],
                    list[..cut].iter().map(|&id| (base + id as u64) as u32),
                );
            }
            base += share;
        }
        debug_assert_eq!(base, theta_q);
        Ok(MergedQuery { phi_q, theta_q, inverted: filler.finish() })
    }

    /// Run one request's own greedy over a shared [`MergedQuery`]
    /// instance. Infallible: routing and merge errors surfaced earlier.
    ///
    /// Stats follow the [`MemoryIndex`](crate::MemoryIndex) convention:
    /// `rr_sets_loaded` reports the θ^Q budget; the physical reads were
    /// charged once to the batch when its arena was decoded.
    pub fn query_merged(&self, merged: &MergedQuery, k: u32) -> QueryOutcome {
        self.query_merged_inner(merged, k, &|| false)
            .expect("greedy with a never-firing stop cannot abort")
    }

    /// [`KbtimIndex::query_merged`] under an execution context: the
    /// deadline (if any) is checked on entry and once per greedy round
    /// (and the `engine.greedy` failpoint fires on entry), aborting
    /// with an error instead of partial seeds.
    pub fn query_merged_ctx(
        &self,
        merged: &MergedQuery,
        k: u32,
        ctx: &QueryCtx,
    ) -> Result<QueryOutcome, IndexError> {
        if kbtim_fault::inject("engine.greedy") {
            return Err(IndexError::Injected("engine.greedy"));
        }
        ctx.check()?;
        self.query_merged_inner(merged, k, &|| ctx.expired()).ok_or(IndexError::DeadlineExceeded)
    }

    fn query_merged_inner(
        &self,
        merged: &MergedQuery,
        k: u32,
        should_stop: &(dyn Fn() -> bool + Sync),
    ) -> Option<QueryOutcome> {
        let started = Instant::now();
        if merged.theta_q == 0 {
            return Some(empty_outcome(started));
        }
        let cover = greedy_max_cover_inverted_until(
            &merged.inverted,
            merged.theta_q,
            k,
            self.pool(),
            should_stop,
        )?;
        let estimated_influence = cover.covered as f64 / merged.theta_q as f64 * merged.phi_q;
        Some(QueryOutcome {
            seeds: cover.seeds,
            marginal_gains: cover.marginal_gains,
            coverage: cover.covered,
            estimated_influence,
            stats: QueryStats {
                theta_q: merged.theta_q,
                rr_sets_loaded: merged.theta_q,
                partitions_loaded: 0,
                io: Default::default(),
                elapsed: started.elapsed(),
            },
        })
    }

    /// Return a finished [`MergedQuery`]'s arenas to the scratch pool.
    pub fn recycle_merged(&self, merged: MergedQuery) {
        self.scratch.put_arenas(merged.inverted.into_arenas());
    }

    /// Algorithm 2 served from a batch's shared [`KeywordArena`] instead
    /// of per-request reads — the RR batch entry
    /// ([`KbtimIndex::merge_keywords`] + [`KbtimIndex::query_merged`]
    /// for one request; the batch planner shares the merge across
    /// same-keyword-set requests too).
    ///
    /// The budget, merge order, and greedy loop are exactly
    /// [`KbtimIndex::query_rr`]'s; only where the decoded `L_w` comes
    /// from differs, so the answer is bit-identical to the unbatched
    /// path (enforced by `tests/concurrent_equiv.rs` proptests).
    pub fn query_rr_prepared(
        &self,
        query: &Query,
        arena: &KeywordArena,
    ) -> Result<QueryOutcome, IndexError> {
        let merged = self.merge_keywords(query, arena)?;
        let outcome = self.query_merged(&merged, query.k());
        self.recycle_merged(merged);
        Ok(outcome)
    }
}

/// A keyword set's merged coverage instance, shared by every batched
/// request over that set (see [`KbtimIndex::merge_keywords`]).
pub struct MergedQuery {
    /// Total tf-idf mass of the query's held keywords (`φ_Q`).
    phi_q: f64,
    /// `θ^Q = Σ_w θ^Q_w` — the global id space of `inverted`.
    theta_q: u64,
    /// The merged, truncated, remapped coverage instance.
    inverted: InvertedIndex,
}

impl MergedQuery {
    /// The merged instance's total RR-set budget `θ^Q`.
    pub fn theta_q(&self) -> u64 {
        self.theta_q
    }

    /// Heap bytes held by the merged instance's arenas — what a cached
    /// prepared query keeps resident.
    pub fn resident_bytes(&self) -> u64 {
        self.inverted.arena_bytes()
    }

    /// Slice a deeper greedy run over this instance down to its first
    /// `k` seeds.
    ///
    /// CELF selects seeds strictly sequentially and `k` only bounds the
    /// loop, so the `k`-seed answer over a fixed instance *is* the
    /// `k`-prefix of any deeper run: same seeds, same marginal gains,
    /// coverage the same running sum, and the influence estimate the
    /// same arithmetic on those values — bit-identical to calling
    /// [`KbtimIndex::query_merged`] with `k` directly (enforced by the
    /// serving-tier tests). This lets the batch planner serve every
    /// same-keyword-set request from one max-`k` greedy run.
    pub fn prefix_outcome(&self, full: &QueryOutcome, k: u32) -> QueryOutcome {
        let n = (k as usize).min(full.seeds.len());
        let marginal_gains = full.marginal_gains[..n].to_vec();
        let coverage: u64 = marginal_gains.iter().sum();
        let estimated_influence = if self.theta_q == 0 {
            0.0
        } else {
            coverage as f64 / self.theta_q as f64 * self.phi_q
        };
        QueryOutcome {
            seeds: full.seeds[..n].to_vec(),
            marginal_gains,
            coverage,
            estimated_influence,
            stats: QueryStats {
                theta_q: self.theta_q,
                rr_sets_loaded: self.theta_q,
                partitions_loaded: 0,
                io: Default::default(),
                elapsed: full.stats.elapsed,
            },
        }
    }
}

pub(crate) fn empty_outcome(started: Instant) -> QueryOutcome {
    QueryOutcome {
        seeds: Vec::new(),
        marginal_gains: Vec::new(),
        coverage: 0,
        estimated_influence: 0.0,
        stats: QueryStats { elapsed: started.elapsed(), ..QueryStats::default() },
    }
}

#[cfg(test)]
mod tests {
    use crate::build::{IndexBuildConfig, IndexBuilder, ThetaMode};
    use crate::format::IndexVariant;
    use crate::KbtimIndex;
    use kbtim_codec::Codec;
    use kbtim_core::theta::SamplingConfig;
    use kbtim_core::wris::wris_query;
    use kbtim_datagen::{Dataset, DatasetConfig, DatasetFamily};
    use kbtim_propagation::model::IcModel;
    use kbtim_propagation::spread::monte_carlo_targeted;
    use kbtim_storage::{IoStats, TempDir};
    use kbtim_topics::Query;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        DatasetConfig::family(DatasetFamily::News).num_users(600).num_topics(8).seed(21).build()
    }

    fn build(data: &Dataset, dir: &std::path::Path, codec: Codec) {
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(3000),
                opt_initial_samples: 128,
                opt_max_rounds: 8,
                ..SamplingConfig::fast()
            },
            codec,
            theta_mode: ThetaMode::Compact,
            variant: IndexVariant::Irr { partition_size: 20 },
            threads: 4,
            seed: 3,
            shards: 1,
        };
        IndexBuilder::new(&model, &data.profiles, config).build(dir).unwrap();
    }

    #[test]
    fn query_returns_seeds_and_stats() {
        let data = dataset();
        let dir = TempDir::new("rrq").unwrap();
        build(&data, dir.path(), Codec::Packed);
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let query = Query::new([0, 1], 10);
        let outcome = index.query_rr(&query).unwrap();
        assert!(!outcome.seeds.is_empty());
        assert!(outcome.seeds.len() <= 10);
        assert!(outcome.estimated_influence > 0.0);
        assert!(outcome.stats.rr_sets_loaded > 0);
        assert_eq!(outcome.stats.rr_sets_loaded, outcome.stats.theta_q);
        assert!(outcome.stats.io.read_ops >= 3, "offsets + rr + il per keyword");
        assert!(outcome.stats.io.bytes_read > 0);
    }

    #[test]
    fn raw_and_packed_codecs_agree() {
        let data = dataset();
        let dir_a = TempDir::new("rrq-raw").unwrap();
        let dir_b = TempDir::new("rrq-packed").unwrap();
        build(&data, dir_a.path(), Codec::Raw);
        build(&data, dir_b.path(), Codec::Packed);
        let a = KbtimIndex::open(dir_a.path(), IoStats::new()).unwrap();
        let b = KbtimIndex::open(dir_b.path(), IoStats::new()).unwrap();
        for q in [Query::new([0], 5), Query::new([1, 2, 3], 8)] {
            let oa = a.query_rr(&q).unwrap();
            let ob = b.query_rr(&q).unwrap();
            assert_eq!(oa.seeds, ob.seeds, "same sampled sets, codec-independent");
            assert_eq!(oa.coverage, ob.coverage);
            // Compression must reduce bytes read.
            assert!(ob.stats.io.bytes_read < oa.stats.io.bytes_read);
        }
    }

    #[test]
    fn influence_estimate_tracks_monte_carlo() {
        let data = dataset();
        let dir = TempDir::new("rrq-mc").unwrap();
        build(&data, dir.path(), Codec::Packed);
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let model = IcModel::weighted_cascade(&data.graph);
        let query = Query::new([0, 1, 2], 10);
        let outcome = index.query_rr(&query).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let mc =
            monte_carlo_targeted(&model, &data.profiles, &query, &outcome.seeds, 20_000, &mut rng);
        let rel = (outcome.estimated_influence - mc).abs() / mc.max(1e-9);
        assert!(rel < 0.2, "index estimate {} vs MC {mc} (rel {rel})", outcome.estimated_influence);
    }

    #[test]
    fn index_seeds_quality_comparable_to_online_wris() {
        // Table 7's claim: the disk index loses nothing vs online WRIS.
        let data = dataset();
        let dir = TempDir::new("rrq-vs-wris").unwrap();
        build(&data, dir.path(), Codec::Packed);
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let model = IcModel::weighted_cascade(&data.graph);
        let query = Query::new([0, 1], 10);
        let idx_outcome = index.query_rr(&query).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let config = SamplingConfig { theta_cap: Some(6000), ..SamplingConfig::fast() };
        let online = wris_query(&model, &data.profiles, &query, &config, &mut rng);
        let mut rng = SmallRng::seed_from_u64(10);
        let mc_idx = monte_carlo_targeted(
            &model,
            &data.profiles,
            &query,
            &idx_outcome.seeds,
            20_000,
            &mut rng,
        );
        let mc_online =
            monte_carlo_targeted(&model, &data.profiles, &query, &online.seeds, 20_000, &mut rng);
        let rel = (mc_idx - mc_online).abs() / mc_online.max(1e-9);
        assert!(rel < 0.1, "index spread {mc_idx} vs online {mc_online} (rel {rel})");
    }

    #[test]
    fn unheld_topic_query_is_empty() {
        let data = dataset();
        let dir = TempDir::new("rrq-empty").unwrap();
        build(&data, dir.path(), Codec::Packed);
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        // Find an unheld topic if any; otherwise fabricate one by asking
        // only for a topic id that exists but may be held — fall back to
        // checking the budget logic directly.
        let unheld: Vec<u32> =
            (0..data.profiles.num_topics()).filter(|&w| data.profiles.doc_freq(w) == 0).collect();
        if let Some(&w) = unheld.first() {
            let outcome = index.query_rr(&Query::new([w], 4)).unwrap();
            assert!(outcome.seeds.is_empty());
            assert_eq!(outcome.stats.theta_q, 0);
        }
        let (phi_q, budget) = index.query_budget(&Query::new([0], 4));
        assert!(phi_q > 0.0);
        assert_eq!(budget.len(), 1);
    }

    #[test]
    fn budget_respects_eqn_11() {
        let data = dataset();
        let dir = TempDir::new("rrq-budget").unwrap();
        build(&data, dir.path(), Codec::Packed);
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let query = Query::new([0, 1, 2, 3], 10);
        let (phi_q, budget) = index.query_budget(&query);
        assert!(phi_q > 0.0);
        for &(topic, share) in &budget {
            let kw = &index.meta().keywords[topic as usize];
            assert!(share <= kw.theta, "θ^Q_w must not exceed the stored pool");
            // p_w-proportionality: share ≈ θ^Q · p_w.
            let p_w = kw.tf_sum * kw.idf / phi_q;
            let theta_q_total: u64 = budget.iter().map(|&(_, s)| s).sum();
            let expected = theta_q_total as f64 * p_w;
            assert!(
                (share as f64 - expected).abs() <= expected * 0.05 + 2.0,
                "topic {topic}: share {share} vs expected {expected:.1}"
            );
        }
    }
}
