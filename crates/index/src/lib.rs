//! Disk-based RR and IRR indexes — the paper's real-time query path
//! (§4 and §5).
//!
//! Online WRIS sampling is correct but slow: hundreds of thousands of
//! reverse BFS walks per query. The paper's key move is *discriminative*
//! WRIS (Eqn 7): the query-dependent root distribution `ps(v, Q)` factors
//! into per-keyword distributions `ps(v, w)` mixed with query-independent
//! proportions `p_w`, so RR sets can be sampled **offline per keyword**
//! and merged at query time. Lemma 2 shows a query drawing `θ^Q·p_w` sets
//! from each keyword's pool keeps Theorem 2's `(1 − 1/e − ε)` guarantee.
//!
//! Two index layouts share one on-disk directory format:
//!
//! * **RR index** (§4, Algorithms 1–2): per keyword, `θ_w` RR sets
//!   ([`theta`](kbtim_core::theta)-sized via Eqn 8 or the compact Eqn 10)
//!   plus inverted lists `L_w`. A query loads the `θ^Q·p_w` *prefix* of
//!   each keyword's sets plus the whole `L_w` and runs greedy
//!   max-coverage.
//! * **IRR index** (§5, Algorithms 3–4): additionally sorts `L_w` by
//!   descending list length, splits it into partitions of `δ` users
//!   (`IL^p_w`), groups RR sets by the first partition that touches them
//!   (`IR^p_w`), and keeps a first-occurrence table `IP_w`. Queries run
//!   NRA-style top-k aggregation, loading partitions incrementally and
//!   refining upper bounds lazily — far fewer RR sets touch memory.
//!
//! Theorem 3 (the seeds' coverage scores from Algorithm 4 equal
//! Algorithm 2's) is enforced in this crate's property tests: both query
//! paths share tie-breaking and produce identical seed sequences.
//!
//! All reads go through checksummed [`kbtim_storage`] segments served by
//! a [`kbtim_storage::BlockSource`] — positioned file reads, a resident
//! page arena, or an mmap mapping, selected per open via
//! [`ServingMode`] — with counted I/O either way; every query returns a
//! [`QueryStats`] with the RR-sets-loaded and I/O numbers behind the
//! paper's Figures 5–7 and Table 6 (zero-copy accesses count as
//! `cache_hits`/`bytes_served`, never as reads). Per-query allocations
//! are pooled in [`scratch`], so a warmed index serves from reused
//! arenas.
//!
//! The index is `Send + Sync` and built for *concurrent* serving: share
//! it through an `Arc` (scratch blocks lease across client threads, the
//! per-keyword fan-out runs on an index-owned persistent
//! [`kbtim_exec::ExecPool`]), dedupe resident pages across opens with
//! [`KbtimIndex::open_shared`], and front it with [`serve::QueryEngine`]
//! to coalesce identical in-flight requests. Answers are bit-identical
//! to serial execution for any interleaving.

pub mod build;
pub mod delta;
pub mod format;
pub mod irr_query;
pub mod memory;
pub mod rr_query;
pub mod scratch;
pub mod serve;
pub mod validate;

use kbtim_graph::NodeId;
use kbtim_storage::segment::SegmentReader;
use kbtim_storage::{BlockSource, IoSnapshot, IoStats};
use kbtim_topics::{Query, TopicId};
use std::path::{Path, PathBuf};
use std::time::Duration;

pub use build::{BuildReport, IndexBuildConfig, IndexBuilder, KeywordBuildStats, ThetaMode};
pub use delta::{DeltaIndex, DeltaSnapshot, DeltaStats, Mutation};
pub use format::{IndexMeta, IndexVariant, KeywordMeta};
pub use kbtim_storage::{PageCache, ServingMode};
pub use memory::MemoryIndex;
pub use rr_query::MergedQuery;
pub use scratch::{KeywordArena, QueryScratch};
pub use serve::{Algo, EngineError, EngineRequest, EngineResult, QueryEngine};

/// Pointer file naming the live segment generation inside an index
/// root (`gen-<N>`, written atomically by the delta tier's flush).
/// Absent for the legacy flat layout, which is generation 0.
pub const CURRENT_FILE: &str = "CURRENT";
/// Directory-name prefix of one flushed segment generation.
pub const GEN_DIR_PREFIX: &str = "gen-";

/// Errors from index construction and querying.
#[derive(Debug)]
pub enum IndexError {
    /// Underlying storage failure.
    Storage(kbtim_storage::segment::StorageError),
    /// Compressed data failed to decode.
    Codec(kbtim_codec::CodecError),
    /// Structural inconsistency in the index itself.
    Corrupt(String),
    /// The operation requires IRR partition blocks, but the index was
    /// built as a plain RR index.
    NotAnIrrIndex,
    /// The query ran past its caller-supplied deadline ([`QueryCtx`])
    /// and was aborted at a stage boundary — no partial answer exists.
    DeadlineExceeded,
    /// A [`kbtim_fault`] failpoint fired at the named engine stage
    /// (fault-injection builds and chaos tests only; never occurs with
    /// the registry disarmed).
    Injected(&'static str),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Storage(e) => write!(f, "storage: {e}"),
            IndexError::Codec(e) => write!(f, "codec: {e}"),
            IndexError::Corrupt(msg) => write!(f, "corrupt index: {msg}"),
            IndexError::NotAnIrrIndex => write!(f, "index has no IRR partitions"),
            IndexError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            IndexError::Injected(stage) => write!(f, "injected fault at {stage}"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<kbtim_storage::segment::StorageError> for IndexError {
    fn from(e: kbtim_storage::segment::StorageError) -> Self {
        IndexError::Storage(e)
    }
}

impl From<kbtim_codec::CodecError> for IndexError {
    fn from(e: kbtim_codec::CodecError) -> Self {
        IndexError::Codec(e)
    }
}

/// Per-query execution context threaded through the `_ctx`-suffixed
/// query paths: currently an optional absolute deadline.
///
/// Deadlines are enforced at stage boundaries — after the keyword
/// decode, once per greedy round, once per IRR NRA round — so an
/// expired query aborts with [`IndexError::DeadlineExceeded`] instead
/// of returning partial results. The default context is unbounded and
/// is what the plain (`query_rr` / `query_irr` / `query_auto`) paths
/// use; checking it costs one `Option` test per round.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryCtx {
    /// Absolute wall-clock point after which the query must abort.
    pub deadline: Option<std::time::Instant>,
}

impl QueryCtx {
    /// A context with no deadline (identical to `QueryCtx::default()`).
    pub fn unbounded() -> QueryCtx {
        QueryCtx::default()
    }

    /// A context that aborts query work once `deadline` passes.
    pub fn with_deadline(deadline: std::time::Instant) -> QueryCtx {
        QueryCtx { deadline: Some(deadline) }
    }

    /// Whether the deadline (if any) has passed.
    #[inline]
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// Error out with [`IndexError::DeadlineExceeded`] if expired.
    #[inline]
    pub fn check(&self) -> Result<(), IndexError> {
        if self.expired() {
            Err(IndexError::DeadlineExceeded)
        } else {
            Ok(())
        }
    }
}

/// Per-query measurement record (the quantities reported in §6).
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Total RR sets the query needed, `θ^Q = Σ_w θ^Q_w`.
    pub theta_q: u64,
    /// RR sets physically loaded from disk (equals `theta_q` for the RR
    /// index; usually far smaller … or larger … for IRR depending on
    /// partition granularity — this is Figures 5–7's right-hand axis).
    pub rr_sets_loaded: u64,
    /// IRR partitions loaded (0 for RR queries).
    pub partitions_loaded: u64,
    /// Positioned-read / byte / seek counters for this query (Table 6).
    pub io: IoSnapshot,
    /// Wall-clock query time.
    pub elapsed: Duration,
}

/// Result of an index-backed KB-TIM query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Selected seeds in greedy order (≤ `Q.k`).
    pub seeds: Vec<NodeId>,
    /// Marginal RR-set coverage of each seed.
    pub marginal_gains: Vec<u64>,
    /// Total covered RR sets.
    pub coverage: u64,
    /// Unbiased targeted-influence estimate
    /// `coverage/θ^Q · φ_Q` (Lemma 1 + Lemma 2).
    pub estimated_influence: f64,
    /// Measurements for this query.
    pub stats: QueryStats,
}

/// One shard of an opened index: the contiguous user range `[lo, hi)`
/// it owns and its per-topic block sources. A legacy (flat-layout)
/// index is exactly one shard spanning the whole universe.
pub(crate) struct Shard {
    /// First user id owned by this shard.
    pub(crate) lo: NodeId,
    /// One past the last user id owned by this shard.
    pub(crate) hi: NodeId,
    /// Per-topic block sources (`None` for topics with no segment — no
    /// user holds them, so their `θ_w = 0`).
    pub(crate) sources: Vec<Option<BlockSource>>,
}

/// An opened on-disk KB-TIM index (either variant).
///
/// [`KbtimIndex::query_rr`] implements Algorithm 2 and works on both
/// variants; [`KbtimIndex::query_irr`] implements Algorithm 4 and requires
/// the IRR variant.
///
/// A sharded directory (built with `shards > 1`, detected by the
/// presence of `shards.manifest`) opens into multiple internal shards;
/// query paths scatter per-shard decode across the worker pool and
/// gather in shard order, so answers stay bit-identical to the
/// single-shard index (see [`mod@format`]'s layout notes).
pub struct KbtimIndex {
    /// The directory handed to `open` — the *root* of the index. With
    /// the generation layout (`root/CURRENT` naming a `gen-<N>/`
    /// subdirectory) this is where new generations land; for the legacy
    /// layout it equals [`KbtimIndex::dir`].
    root: PathBuf,
    /// The resolved segment directory this handle actually serves from.
    dir: PathBuf,
    /// Segment generation resolved from `root/CURRENT` (0 for the
    /// legacy pointer-less layout).
    generation: u64,
    meta: IndexMeta,
    /// The opened shards in shard order. Every shard's sources share the
    /// same cloned [`IoStats`] handle, so per-query I/O books aggregate
    /// reads/cache hits/bytes across all shards automatically.
    shards: Vec<Shard>,
    stats: IoStats,
    /// The index-owned worker pool for per-keyword load/decode fan-out.
    /// Built once (at open or by [`KbtimIndex::set_threads`]), never per
    /// query: a persistent [`kbtim_exec::ExecPool`] whose workers spawn
    /// lazily on the first parallel query and then stay parked between
    /// queries. Query answers are identical for every thread count; only
    /// wall-clock time changes.
    pool: kbtim_exec::ExecPool,
    /// The `set_threads` knob as configured (`None` = the machine's
    /// available parallelism), kept for reporting.
    threads: Option<usize>,
    mode: ServingMode,
    /// Identity of the segment generation this index was opened against
    /// (see [`KbtimIndex::segment_fingerprint`]).
    fingerprint: u64,
    /// Reusable query buffers (see [`scratch`]); shared by every query
    /// against this index.
    pub(crate) scratch: scratch::ScratchPool,
}

impl KbtimIndex {
    /// Open an index directory with the default positioned-read backend
    /// ([`ServingMode::File`]), validating segment framing. Reads done
    /// during `open` are *not* charged to `stats` (the paper measures
    /// per-query I/O against a warm catalog).
    pub fn open(dir: impl AsRef<Path>, stats: IoStats) -> Result<KbtimIndex, IndexError> {
        KbtimIndex::open_with(dir, stats, ServingMode::File)
    }

    /// [`KbtimIndex::open`] with an explicit serving backend. Query
    /// answers are bit-identical for every mode; only where block bytes
    /// live (and which [`IoStats`] counters record accesses) changes.
    pub fn open_with(
        dir: impl AsRef<Path>,
        stats: IoStats,
        mode: ServingMode,
    ) -> Result<KbtimIndex, IndexError> {
        KbtimIndex::open_inner(dir.as_ref(), stats, mode, None)
    }

    /// [`KbtimIndex::open_with`] through a [`kbtim_storage::PageCache`]:
    /// keyword segments whose pages are already resident anywhere in the
    /// process (another open of this index, a serving engine, a
    /// validator) are shared instead of re-loaded — N open indexes, one
    /// copy of each segment. Answers and per-index [`IoStats`] are
    /// unaffected; pass [`kbtim_storage::PageCache::global`] for the
    /// process-wide cache.
    pub fn open_shared(
        dir: impl AsRef<Path>,
        stats: IoStats,
        mode: ServingMode,
        cache: &kbtim_storage::PageCache,
    ) -> Result<KbtimIndex, IndexError> {
        KbtimIndex::open_inner(dir.as_ref(), stats, mode, Some(cache))
    }

    fn open_inner(
        dir: &Path,
        stats: IoStats,
        mode: ServingMode,
        cache: Option<&kbtim_storage::PageCache>,
    ) -> Result<KbtimIndex, IndexError> {
        let root = dir.to_path_buf();
        // Generation layout: a `CURRENT` file names the live `gen-<N>`
        // subdirectory (written atomically by the delta tier's flush).
        // Without one the directory itself is the (generation-0)
        // segment dir — every pre-delta index keeps opening unchanged.
        let (dir, generation) = match std::fs::read_to_string(root.join(CURRENT_FILE)) {
            Ok(contents) => {
                let name = contents.trim();
                let gen = name
                    .strip_prefix(GEN_DIR_PREFIX)
                    .and_then(|n| n.parse::<u64>().ok())
                    .ok_or_else(|| {
                        IndexError::Corrupt(format!("CURRENT names invalid generation {name:?}"))
                    })?;
                (root.join(name), gen)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (root.clone(), 0),
            Err(e) => return Err(IndexError::Storage(kbtim_storage::segment::StorageError::Io(e))),
        };
        let open_stats = IoStats::new(); // discard catalog-open I/O
        let meta_reader = SegmentReader::open(dir.join(format::META_FILE), open_stats.clone())?;
        let meta_bytes = meta_reader.read_block(format::META_BLOCK)?;
        let meta = IndexMeta::decode(&meta_bytes)?;

        // Auto-detect the layout: a shards.manifest announces per-shard
        // segment subdirectories; otherwise the directory is a legacy
        // flat (single-shard) index.
        let manifest_path = dir.join(format::SHARD_MANIFEST_FILE);
        let splits: Vec<(NodeId, NodeId, PathBuf)> = if manifest_path.is_file() {
            let reader = SegmentReader::open(&manifest_path, open_stats.clone())?;
            let manifest =
                format::ShardManifest::decode(&reader.read_block(format::SHARD_MANIFEST_BLOCK)?)?;
            if manifest.num_users != meta.num_users {
                return Err(IndexError::Corrupt(format!(
                    "shard manifest covers {} users, catalog has {}",
                    manifest.num_users, meta.num_users
                )));
            }
            (0..manifest.num_shards())
                .map(|s| {
                    (manifest.cuts[s], manifest.cuts[s + 1], dir.join(format::shard_dir_name(s)))
                })
                .collect()
        } else {
            vec![(0, meta.num_users, dir.clone())]
        };

        let mut shards = Vec::with_capacity(splits.len());
        for (lo, hi, shard_dir) in splits {
            let mut sources = Vec::with_capacity(meta.keywords.len());
            for kw in &meta.keywords {
                if kw.theta == 0 {
                    sources.push(None);
                } else {
                    let path = shard_dir.join(format::keyword_file_name(kw.topic));
                    sources.push(Some(match cache {
                        Some(cache) => BlockSource::open_shared(path, stats.clone(), mode, cache)?,
                        None => BlockSource::open(path, stats.clone(), mode)?,
                    }));
                }
            }
            shards.push(Shard { lo, hi, sources });
        }
        // Capture segment identity while opening — the same
        // (path, length, mtime) triple the storage PageCache keys loaded
        // pages by — so prepared-query caches can bind entries to the
        // exact segment generation this handle serves. Every shard's
        // segment set folds in, so a single-shard reflush changes the
        // fingerprint of the whole index.
        let fingerprint = {
            use std::hash::{Hash, Hasher};
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            generation.hash(&mut hasher);
            for (shard_idx, shard) in shards.iter().enumerate() {
                for (topic, source) in shard.sources.iter().enumerate() {
                    let Some(source) = source.as_ref() else { continue };
                    shard_idx.hash(&mut hasher);
                    topic.hash(&mut hasher);
                    source.path().hash(&mut hasher);
                    source.file_len().unwrap_or(0).hash(&mut hasher);
                    let mtime = std::fs::metadata(source.path())
                        .ok()
                        .and_then(|m| m.modified().ok())
                        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok());
                    mtime.hash(&mut hasher);
                    // Content discriminator: the directory CRC survives
                    // same-length same-mtime rewrites that fool the triple.
                    kbtim_storage::segment::footer_tag(source.path())
                        .unwrap_or(0)
                        .hash(&mut hasher);
                }
            }
            hasher.finish()
        };
        Ok(KbtimIndex {
            root,
            generation,
            dir,
            meta,
            shards,
            stats,
            pool: kbtim_exec::ExecPool::new(None),
            threads: None,
            mode,
            fingerprint,
            scratch: scratch::ScratchPool::new(),
        })
    }

    /// Identity of the keyword-segment generation this handle was opened
    /// against: a hash over every segment's (shard, path, length, mtime)
    /// at open time — the same (path, length, mtime) triple
    /// [`kbtim_storage::PageCache`] keys loaded pages by, extended with
    /// the shard index so **every shard's segment set** contributes. Two
    /// opens of the same on-disk state agree; rebuilding any keyword
    /// segment in any shard changes the value, so caches keyed by it
    /// (the serving tier's prepared-query cache) can never serve an
    /// entry across index generations — not even after a single-shard
    /// reflush that leaves every other shard untouched.
    pub fn segment_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The segment generation this handle resolved at open time: `N`
    /// when the root's [`CURRENT`](CURRENT_FILE) pointer named `gen-N`,
    /// 0 for the legacy flat layout with no pointer file.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The index *root* this handle was opened with — where generation
    /// directories and the `CURRENT` pointer live. Distinct from the
    /// resolved segment directory when a generation pointer is present.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of shards this index serves from (1 for the legacy flat
    /// layout). Answers are bit-identical for every shard count; only
    /// the decode/merge fan-out width changes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The serving backend this index was opened with.
    pub fn serving_mode(&self) -> ServingMode {
        self.mode
    }

    /// Segment bytes held resident by the serving tier (0 for the file
    /// backend; the page arenas/mappings otherwise), across all shards.
    pub fn resident_bytes(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|shard| shard.sources.iter().flatten())
            .map(|s| s.resident_bytes())
            .sum()
    }

    /// Set the worker-thread count used by the query paths (`None` = the
    /// machine's available parallelism). Answers are bit-identical for
    /// every setting — keyword decode work is merged in a deterministic
    /// order — so this only trades latency.
    ///
    /// The index *owns* the resulting pool: it is built here, once, and
    /// every subsequent query schedules onto its long-lived workers
    /// (previously a fresh `ExecPool` was assembled on every query).
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
        self.pool = kbtim_exec::ExecPool::new(threads);
    }

    /// Builder-style [`KbtimIndex::set_threads`].
    pub fn with_threads(mut self, threads: Option<usize>) -> KbtimIndex {
        self.set_threads(threads);
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    pub(crate) fn pool(&self) -> &kbtim_exec::ExecPool {
        &self.pool
    }

    /// The index catalog (sizes, θ_w table, codec, variant).
    pub fn meta(&self) -> &IndexMeta {
        &self.meta
    }

    /// Directory this index lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Shared I/O counters for all queries against this index.
    pub fn io_stats(&self) -> &IoStats {
        &self.stats
    }

    /// Total on-disk footprint in bytes (catalog + keyword segments; for
    /// a sharded index also the manifest and per-shard catalogs).
    pub fn disk_bytes(&self) -> Result<u64, IndexError> {
        let file_len = |path: PathBuf| std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let mut total = file_len(self.dir.join(format::META_FILE));
        if self.num_shards() > 1 {
            total += file_len(self.dir.join(format::SHARD_MANIFEST_FILE));
            for s in 0..self.num_shards() {
                total += file_len(self.dir.join(format::shard_dir_name(s)).join(format::META_FILE));
            }
        }
        for shard in &self.shards {
            for source in shard.sources.iter().flatten() {
                total += source.file_len()?;
            }
        }
        Ok(total)
    }

    /// Per-keyword mixture proportions and the query budget:
    /// `θ^Q = min_w θ_w/p_w` (Eqn 11), split as `θ^Q_w = ⌊θ^Q·p_w⌋`.
    ///
    /// Returns `(phi_q, per-keyword (topic, θ^Q_w))`; keywords nobody holds
    /// contribute nothing. `phi_q == 0` means no user is relevant.
    pub fn query_budget(&self, query: &Query) -> (f64, Vec<(TopicId, u64)>) {
        memory::query_budget_from_meta(&self.meta, query)
    }

    /// Answer a query with whichever algorithm the cost model prefers.
    ///
    /// Figure 5's crossover: IRR's incremental loading wins while the
    /// top-k aggregation stops after a few partitions (small `Q.k`), and
    /// degrades past the full prefix scan as `k` approaches the partition
    /// size δ. The default policy — IRR when `4·Q.k ≤ δ` — is read
    /// directly off that figure; tune per deployment via
    /// [`KbtimIndex::query_auto_with`].
    pub fn query_auto(&self, query: &Query) -> Result<QueryOutcome, IndexError> {
        self.query_auto_ctx(query, &QueryCtx::default())
    }

    /// [`KbtimIndex::query_auto`] under an execution context (see
    /// [`QueryCtx`]); the cost-model pick itself is deadline-free.
    pub fn query_auto_ctx(
        &self,
        query: &Query,
        ctx: &QueryCtx,
    ) -> Result<QueryOutcome, IndexError> {
        let irr_max_k = match self.meta.variant {
            IndexVariant::Rr => 0,
            IndexVariant::Irr { partition_size } => partition_size / 4,
        };
        self.query_auto_with_ctx(query, irr_max_k, ctx)
    }

    /// [`KbtimIndex::query_auto`] with an explicit `Q.k` threshold below
    /// which IRR is used.
    pub fn query_auto_with(
        &self,
        query: &Query,
        irr_max_k: u32,
    ) -> Result<QueryOutcome, IndexError> {
        self.query_auto_with_ctx(query, irr_max_k, &QueryCtx::default())
    }

    /// [`KbtimIndex::query_auto_with`] under an execution context.
    pub fn query_auto_with_ctx(
        &self,
        query: &Query,
        irr_max_k: u32,
        ctx: &QueryCtx,
    ) -> Result<QueryOutcome, IndexError> {
        let irr_available = matches!(self.meta.variant, IndexVariant::Irr { .. });
        if irr_available && query.k() <= irr_max_k {
            self.query_irr_ctx(query, ctx)
        } else {
            self.query_rr_ctx(query, ctx)
        }
    }

    /// The opened shards in shard order.
    pub(crate) fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The block source serving `topic` from shard `shard`.
    pub(crate) fn source_in(
        &self,
        shard: usize,
        topic: TopicId,
    ) -> Result<&BlockSource, IndexError> {
        self.shards
            .get(shard)
            .and_then(|s| s.sources.get(topic as usize))
            .and_then(|r| r.as_ref())
            .ok_or_else(|| {
                IndexError::Corrupt(format!("no segment for topic {topic} in shard {shard}"))
            })
    }

    /// Shard-0 source — only meaningful on a single-shard index, where
    /// shard 0 *is* the whole index (the IRR partition walk and the
    /// resident loader's flat path assert this before calling).
    pub(crate) fn source(&self, topic: TopicId) -> Result<&BlockSource, IndexError> {
        debug_assert_eq!(self.num_shards(), 1, "source() reads the flat (single-shard) layout");
        self.source_in(0, topic)
    }
}
