//! The mutable delta tier: an LSM-style in-memory overlay over an
//! immutable on-disk index generation.
//!
//! A [`DeltaIndex`] wraps an opened [`KbtimIndex`] (the *base*
//! generation) plus the logical dataset it was built from (graph +
//! profiles) and absorbs mutations — new users, new edges, per-user
//! topic-weight updates — without rebuilding the base. Every mutation
//! batch re-materializes exactly the *dirty* keywords through
//! `IndexBuilder::sample_keyword`, the same pure function the on-disk
//! build runs, so a keyword overlay is **bit-identical** to what a
//! from-scratch flat build of the mutated content would sample for that
//! keyword. Queries union the overlay with the base at decode time:
//! clean keywords stream from the immutable segments, dirty keywords
//! come from the overlay, and the merged coverage instance (and
//! therefore the answer) is bit-identical to a from-scratch build of
//! the same logical content — the contract `tests/delta_equiv.rs`
//! enforces differentially.
//!
//! # Snapshots and generations
//!
//! Writers serialize on an internal mutex; each applied batch publishes
//! a new immutable [`DeltaSnapshot`] (base handle + union catalog +
//! keyword overlays) under a monotonically increasing **generation**
//! counter. Readers pin a snapshot with [`DeltaIndex::snapshot`] and
//! never observe in-flight writes; the serving tier folds the
//! generation into its merge-cache key so no cache entry can ever
//! cross generations.
//!
//! # Flush / compaction
//!
//! [`DeltaIndex::flush`] compacts base ∪ delta into a brand-new segment
//! generation: it writes the mutated dataset plus a full
//! [`IndexBuilder::build`] into `root/gen-<N>.tmp`, **verifies** the
//! built catalog is byte-identical to the union snapshot's catalog,
//! then commits with two atomic renames (`gen-<N>.tmp` → `gen-<N>`,
//! then the [`CURRENT`](crate::CURRENT_FILE) pointer). A failure at any
//! stage (the `flush.build` / `flush.verify` / `flush.commit`
//! failpoints fire at the matching boundaries) leaves the published
//! snapshot — and the `CURRENT` pointer — untouched, so readers never
//! see a torn generation and a retry starts clean.
//!
//! Unflushed mutations are journaled to `root/delta.log` (exact f32
//! bit patterns, one mutation per line); [`DeltaIndex::attach`] replays
//! the journal so a restart loses nothing, and the serving tier's drain
//! path reports the outstanding count.

use crate::build::{IndexBuildConfig, IndexBuilder};
use crate::format::{IlCsr, IndexMeta, KeywordMeta};
use crate::scratch::KeywordArena;
use crate::{memory, rr_query, IndexError, KbtimIndex, QueryCtx, QueryOutcome};
use kbtim_graph::{Graph, NodeId};
use kbtim_propagation::IcModel;
use kbtim_topics::{Query, TopicId, UserProfiles};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// File (under the index root) journaling unflushed mutations.
pub const DELTA_JOURNAL_FILE: &str = "delta.log";

/// SplitMix64 finalizer — mixes the generation counter into the serving
/// tier's cache fingerprints so consecutive generations never collide.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One logical mutation accepted by the delta tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mutation {
    /// Append one new (isolated, profile-less) user to the universe.
    IngestUser,
    /// Append the directed edge `from → to` to the social graph.
    IngestEdge {
        /// Source node.
        from: NodeId,
        /// Target node.
        to: NodeId,
    },
    /// Set `tf(topic, user)` to `weight`; `0.0` removes the entry.
    SetTopicWeight {
        /// The user whose profile changes.
        user: NodeId,
        /// The topic whose weight changes.
        topic: TopicId,
        /// The new term frequency (finite, ≥ 0; 0 removes).
        weight: f32,
    },
}

/// Writer-side state: the full logical dataset (base content plus every
/// applied mutation) the next flush will compact.
struct DeltaState {
    num_users: u32,
    num_topics: u32,
    /// Complete directed edge list (base edges + ingested ones, in
    /// ingestion order — duplicates are kept; the weighted-cascade model
    /// counts them in `in_degree` exactly as a from-scratch build would).
    edges: Vec<(NodeId, NodeId)>,
    /// Complete profile entries, `(user, topic) → tf`.
    entries: BTreeMap<(NodeId, TopicId), f32>,
    /// Mutations journaled since the last flush.
    unflushed: u64,
}

/// One dirty keyword's materialized content: its union-catalog row and
/// its full inverted list `L_w` (empty when θ_w dropped to 0).
struct OverlayKeyword {
    meta: KeywordMeta,
    csr: IlCsr,
}

/// An immutable point-in-time view of base ∪ delta. Self-contained:
/// holds the base handle, the union catalog, and every dirty keyword's
/// overlay — a reader pinned to a snapshot is oblivious to concurrent
/// writers and flushes.
pub struct DeltaSnapshot {
    base: Arc<KbtimIndex>,
    meta: IndexMeta,
    overlay: HashMap<TopicId, Arc<OverlayKeyword>>,
    generation: u64,
    unflushed: u64,
}

impl DeltaSnapshot {
    /// The monotonic mutation generation this snapshot captures (0 at
    /// attach; +1 per applied batch and per flush).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The immutable base generation this snapshot overlays.
    pub fn base(&self) -> &Arc<KbtimIndex> {
        &self.base
    }

    /// The union catalog: base rows shadowed by every dirty keyword's
    /// re-sampled row, under the mutated `|V|`.
    pub fn meta(&self) -> &IndexMeta {
        &self.meta
    }

    /// Number of keywords served from the in-memory overlay.
    pub fn overlay_keywords(&self) -> usize {
        self.overlay.len()
    }

    /// Journaled mutations not yet compacted when this snapshot was
    /// taken.
    pub fn unflushed(&self) -> u64 {
        self.unflushed
    }

    /// The Eqn-11 budget under the union catalog.
    pub fn query_budget(&self, query: &Query) -> (f64, Vec<(TopicId, u64)>) {
        memory::query_budget_from_meta(&self.meta, query)
    }

    /// Decode each wanted keyword once into a shared [`KeywordArena`]:
    /// clean keywords stream from the base segments (in parallel, as
    /// [`KbtimIndex::decode_keywords`] always has), dirty keywords
    /// splice in their overlay CSRs. The arena keeps topics strictly
    /// ascending, so downstream merges cannot tell the union from a
    /// monolithic decode.
    pub fn decode_union(&self, wants: &[(TopicId, u64)]) -> Result<KeywordArena, IndexError> {
        // Normalize exactly like `decode_keywords` (sorted ascending,
        // duplicates merged at their widest share).
        let owned: Vec<(TopicId, u64)>;
        let wants = if wants.windows(2).all(|w| w[0].0 < w[1].0) {
            wants
        } else {
            let mut sorted = wants.to_vec();
            sorted.sort_by_key(|&(topic, _)| topic);
            sorted.dedup_by(|next, kept| {
                if next.0 == kept.0 {
                    kept.1 = kept.1.max(next.1);
                    true
                } else {
                    false
                }
            });
            owned = sorted;
            &owned
        };
        let base_wants: Vec<(TopicId, u64)> =
            wants.iter().copied().filter(|(t, _)| !self.overlay.contains_key(t)).collect();
        let base_arena = self.base.decode_keywords(&base_wants)?;
        if base_arena.len() == wants.len() {
            return Ok(base_arena);
        }
        // Splice: walk the ascending want list, drawing each keyword
        // from the base arena or its overlay.
        let mut arena =
            KeywordArena { rr_sets_decoded: base_arena.rr_sets_decoded, ..Default::default() };
        let mut base_csrs = base_arena.csrs.into_iter();
        for &(topic, share) in wants {
            match self.overlay.get(&topic) {
                Some(ov) => {
                    // Copy into a pool-leased CSR so `recycle_keywords`
                    // can treat every arena slot uniformly.
                    let mut csr = self.base.scratch.take_csr();
                    csr.append(&ov.csr);
                    arena.topics.push(topic);
                    arena.csrs.push(csr);
                    arena.rr_sets_decoded += share;
                }
                None => {
                    let csr = base_csrs.next().expect("one base CSR per clean keyword");
                    arena.topics.push(topic);
                    arena.csrs.push(csr);
                }
            }
        }
        Ok(arena)
    }

    /// Answer `query` over base ∪ delta — Algorithm 2 on the union
    /// decode. Bit-identical to a from-scratch flat build of the same
    /// logical content (the delta tier's core contract).
    pub fn query(&self, query: &Query) -> Result<QueryOutcome, IndexError> {
        self.query_ctx(query, &QueryCtx::default())
    }

    /// [`DeltaSnapshot::query`] under an execution context (deadline
    /// checks at the same stage boundaries as the base paths).
    pub fn query_ctx(&self, query: &Query, ctx: &QueryCtx) -> Result<QueryOutcome, IndexError> {
        let started = Instant::now();
        let (phi_q, budget) = self.query_budget(query);
        if budget.is_empty() {
            return Ok(rr_query::empty_outcome(started));
        }
        let arena = self.decode_union(&budget)?;
        ctx.check()?;
        let result = self
            .base
            .merge_budgeted_over(self.meta.num_users, phi_q, &budget, &arena)
            .and_then(|merged| {
                let outcome = self.base.query_merged_ctx(&merged, query.k(), ctx);
                self.base.recycle_merged(merged);
                outcome
            });
        self.base.recycle_keywords(arena);
        result
    }
}

/// Point-in-time counters for `kbtim validate` / the drain path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaStats {
    /// Snapshot mutation generation (see [`DeltaSnapshot::generation`]).
    pub generation: u64,
    /// The base's flushed segment generation (`gen-<N>` / 0 for flat).
    pub flushed_generation: u64,
    /// Journaled mutations awaiting compaction.
    pub unflushed: u64,
    /// Keywords currently served from the overlay.
    pub overlay_keywords: usize,
    /// `|V|` under the union (base + ingested users).
    pub num_users: u32,
    /// Directed edges in the union graph.
    pub num_edges: u64,
    /// Profile entries in the union.
    pub num_entries: u64,
}

/// The mutable tier: one writer lane (mutex-serialized applies and
/// flushes) publishing immutable [`DeltaSnapshot`]s to any number of
/// readers.
pub struct DeltaIndex {
    root: PathBuf,
    config: IndexBuildConfig,
    writer: Mutex<DeltaState>,
    snapshot: RwLock<Arc<DeltaSnapshot>>,
}

impl DeltaIndex {
    /// Attach a mutable tier over `base`, seeded with the logical
    /// dataset (`graph`, `profiles`) the base generation was built from
    /// and the exact build `config` it was built with — generation
    /// equivalence requires both, and the codec/variant are checked
    /// against the base catalog. Only the IC model is supported (the
    /// delta tier re-materializes keywords through the weighted-cascade
    /// model). Replays `root/delta.log` if a previous process left
    /// unflushed mutations behind.
    pub fn attach(
        base: Arc<KbtimIndex>,
        graph: &Graph,
        profiles: &UserProfiles,
        config: IndexBuildConfig,
    ) -> Result<DeltaIndex, IndexError> {
        let meta = base.meta();
        if meta.model_name != "IC" {
            return Err(IndexError::Corrupt(format!(
                "delta tier supports the IC model only, base was built with {:?}",
                meta.model_name
            )));
        }
        if graph.num_nodes() != meta.num_users || profiles.num_users() != meta.num_users {
            return Err(IndexError::Corrupt(format!(
                "dataset/universe mismatch: base |V|={}, graph {}, profiles {}",
                meta.num_users,
                graph.num_nodes(),
                profiles.num_users()
            )));
        }
        if profiles.num_topics() != meta.num_topics {
            return Err(IndexError::Corrupt(format!(
                "topic-space mismatch: base {}, profiles {}",
                meta.num_topics,
                profiles.num_topics()
            )));
        }
        if config.codec != meta.codec || config.variant != meta.variant {
            return Err(IndexError::Corrupt(
                "build config codec/variant must match the base catalog".into(),
            ));
        }
        let mut entries = BTreeMap::new();
        for user in 0..profiles.num_users() {
            let (topics, tfs) = profiles.user_vector(user);
            for (&topic, &tf) in topics.iter().zip(tfs) {
                entries.insert((user, topic), tf);
            }
        }
        let state = DeltaState {
            num_users: meta.num_users,
            num_topics: meta.num_topics,
            edges: graph.edges().collect(),
            entries,
            unflushed: 0,
        };
        let snapshot = DeltaSnapshot {
            meta: meta.clone(),
            base,
            overlay: HashMap::new(),
            generation: 0,
            unflushed: 0,
        };
        let delta = DeltaIndex {
            root: snapshot.base.root().to_path_buf(),
            config,
            writer: Mutex::new(state),
            snapshot: RwLock::new(Arc::new(snapshot)),
        };
        delta.replay_journal()?;
        Ok(delta)
    }

    /// The index root (where `gen-<N>` directories, `CURRENT`, and the
    /// journal live).
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Pin the current point-in-time view. The returned snapshot never
    /// changes — concurrent applies and flushes publish *new* snapshots.
    pub fn snapshot(&self) -> Arc<DeltaSnapshot> {
        lock_read(&self.snapshot).clone()
    }

    /// The current mutation generation.
    pub fn generation(&self) -> u64 {
        self.snapshot().generation
    }

    /// Journaled mutations awaiting compaction.
    pub fn unflushed(&self) -> u64 {
        lock(&self.writer).unflushed
    }

    /// Point-in-time counters for `kbtim validate` and the drain path.
    pub fn stats(&self) -> DeltaStats {
        let state = lock(&self.writer);
        let snap = self.snapshot();
        DeltaStats {
            generation: snap.generation,
            flushed_generation: snap.base.generation(),
            unflushed: state.unflushed,
            overlay_keywords: snap.overlay.len(),
            num_users: state.num_users,
            num_edges: state.edges.len() as u64,
            num_entries: state.entries.len() as u64,
        }
    }

    /// Apply a mutation batch: validate, journal, fold into the writer
    /// state, re-materialize every dirty keyword, and publish the new
    /// snapshot. Returns the new generation. All-or-nothing: an invalid
    /// mutation anywhere in the batch rejects the whole batch before
    /// any state changes.
    pub fn apply(&self, mutations: &[Mutation]) -> Result<u64, IndexError> {
        if mutations.is_empty() {
            return Ok(self.generation());
        }
        let mut state = lock(&self.writer);
        // Validate the whole batch against the evolving universe first —
        // nothing is journaled or applied if any mutation is bad.
        let mut users = state.num_users;
        for m in mutations {
            match *m {
                Mutation::IngestUser => users += 1,
                Mutation::IngestEdge { from, to } => {
                    if from >= users || to >= users {
                        return Err(IndexError::Corrupt(format!(
                            "edge ({from}, {to}) out of range (|V| = {users})"
                        )));
                    }
                }
                Mutation::SetTopicWeight { user, topic, weight } => {
                    if user >= users {
                        return Err(IndexError::Corrupt(format!(
                            "user {user} out of range (|V| = {users})"
                        )));
                    }
                    if topic >= state.num_topics {
                        return Err(IndexError::Corrupt(format!(
                            "topic {topic} out of range ({} topics)",
                            state.num_topics
                        )));
                    }
                    if !weight.is_finite() || weight < 0.0 {
                        return Err(IndexError::Corrupt(format!(
                            "weight must be finite and >= 0, got {weight}"
                        )));
                    }
                }
            }
        }
        self.journal_append(mutations).map_err(storage_io)?;
        let dirty = apply_to_state(&mut state, mutations);
        state.unflushed += mutations.len() as u64;
        self.publish(&state, dirty.as_ref())
    }

    /// Compact base ∪ delta into segment generation `N+1` and republish
    /// over the fresh base. Returns the new *flushed* generation. A
    /// no-op (returning the current flushed generation) when nothing is
    /// outstanding. On any failure — including the `flush.build` /
    /// `flush.verify` / `flush.commit` failpoints — the published
    /// snapshot and the `CURRENT` pointer are untouched and a retry
    /// starts from scratch.
    pub fn flush(&self) -> Result<u64, IndexError> {
        let mut state = lock(&self.writer);
        let prev = self.snapshot();
        if state.unflushed == 0 && prev.overlay.is_empty() {
            return Ok(prev.base.generation());
        }
        if kbtim_fault::inject("flush.build") {
            return Err(IndexError::Injected("flush.build"));
        }
        let new_gen = prev.base.generation() + 1;
        let gen_name = format!("{}{}", crate::GEN_DIR_PREFIX, new_gen);
        let tmp = self.root.join(format!("{gen_name}.tmp"));
        if let Err(e) = self.flush_into(&state, &prev, &gen_name, &tmp) {
            let _ = std::fs::remove_dir_all(&tmp);
            return Err(e);
        }

        // Committed: reopen the fresh generation as the new base and
        // republish with an empty overlay.
        let new_base = KbtimIndex::open_shared(
            &self.root,
            prev.base.io_stats().clone(),
            prev.base.serving_mode(),
            kbtim_storage::PageCache::global(),
        )?
        .with_threads(prev.base.threads());
        let _ = std::fs::remove_file(self.root.join(DELTA_JOURNAL_FILE));
        state.unflushed = 0;
        let snapshot = DeltaSnapshot {
            meta: new_base.meta().clone(),
            base: Arc::new(new_base),
            overlay: HashMap::new(),
            generation: prev.generation + 1,
            unflushed: 0,
        };
        *lock_write(&self.snapshot) = Arc::new(snapshot);
        Ok(new_gen)
    }

    /// Structurally verify that the *would-be* next generation equals
    /// base ∪ delta: build it into a scratch directory, compare the
    /// built catalog byte-for-byte against the union snapshot's, and
    /// remove the scratch. Commits nothing — this is the check `kbtim
    /// validate` reports for a live tier. A clean tier (nothing
    /// unflushed, empty overlay) verifies trivially against itself.
    pub fn verify(&self) -> Result<(), IndexError> {
        let state = lock(&self.writer);
        let prev = self.snapshot();
        let scratch = self.root.join("verify.tmp");
        let next = format!("{}{}", crate::GEN_DIR_PREFIX, prev.base.generation() + 1);
        let result = self.build_and_verify(&state, &prev, &next, &scratch);
        let _ = std::fs::remove_dir_all(&scratch);
        result
    }

    /// Build + verify + commit one generation directory. Split out so
    /// [`DeltaIndex::flush`] can clean up the staging directory on any
    /// error without sprinkling cleanup at every `?`.
    fn flush_into(
        &self,
        state: &DeltaState,
        prev: &DeltaSnapshot,
        gen_name: &str,
        tmp: &Path,
    ) -> Result<(), IndexError> {
        self.build_and_verify(state, prev, gen_name, tmp)?;

        // Commit: two atomic renames. A crash between them leaves a
        // complete-but-unreferenced generation directory; `CURRENT`
        // still names the old one, so readers never see a torn state.
        if kbtim_fault::inject("flush.commit") {
            return Err(IndexError::Injected("flush.commit"));
        }
        let final_dir = self.root.join(gen_name);
        let _ = std::fs::remove_dir_all(&final_dir);
        std::fs::rename(tmp, &final_dir).map_err(storage_io)?;
        let current_tmp = self.root.join(format!("{}.tmp", crate::CURRENT_FILE));
        std::fs::write(&current_tmp, format!("{gen_name}\n")).map_err(storage_io)?;
        std::fs::rename(&current_tmp, self.root.join(crate::CURRENT_FILE)).map_err(storage_io)?;
        Ok(())
    }

    /// Build base ∪ delta into `dir` and verify the built catalog is
    /// byte-identical to the union snapshot's — the structural "gen N+1
    /// equals base ∪ delta" guarantee behind both [`DeltaIndex::flush`]
    /// and [`DeltaIndex::verify`].
    fn build_and_verify(
        &self,
        state: &DeltaState,
        prev: &DeltaSnapshot,
        gen_name: &str,
        dir: &Path,
    ) -> Result<(), IndexError> {
        let _ = std::fs::remove_dir_all(dir);
        std::fs::create_dir_all(dir).map_err(storage_io)?;

        // The logical dataset rides inside the generation directory so
        // the next `attach` (or `kbtim ingest`) can reload base content
        // without a side channel. f32 `Display` → parse roundtrips
        // exactly, so the rewritten dataset is the same logical content.
        let (graph, profiles) = materialize_dataset(state);
        kbtim_graph::io::write_edge_list(&graph, dir.join("graph.txt")).map_err(storage_io)?;
        kbtim_topics::io::write_profiles(&profiles, dir.join("profiles.tsv"))
            .map_err(storage_io)?;

        let model = IcModel::weighted_cascade(&graph);
        let builder = IndexBuilder::new(&model, &profiles, self.config);
        builder.build(dir)?;

        if kbtim_fault::inject("flush.verify") {
            return Err(IndexError::Injected("flush.verify"));
        }
        let built = KbtimIndex::open(dir, kbtim_storage::IoStats::new())?;
        let mut expected = union_meta(state, prev, None);
        expected.codec = self.config.codec;
        expected.variant = self.config.variant;
        if built.meta().encode() != expected.encode() {
            return Err(IndexError::Corrupt(format!(
                "flush verification failed: {gen_name} catalog differs from base ∪ delta"
            )));
        }
        Ok(())
    }

    /// Re-materialize dirty keywords and publish the next snapshot.
    /// `dirty = None` means every keyword (the universe changed).
    fn publish(
        &self,
        state: &DeltaState,
        dirty: Option<&BTreeSet<TopicId>>,
    ) -> Result<u64, IndexError> {
        let prev = self.snapshot();
        let (graph, profiles) = materialize_dataset(state);
        let model = IcModel::weighted_cascade(&graph);
        let builder = IndexBuilder::new(&model, &profiles, self.config);

        let mut overlay = prev.overlay.clone();
        let all: Vec<TopicId>;
        let dirty_topics: &[TopicId] = match dirty {
            Some(set) => {
                all = set.iter().copied().collect();
                &all
            }
            None => {
                all = (0..state.num_topics).collect();
                &all
            }
        };
        for &topic in dirty_topics {
            let (meta, csr) = match builder.sample_keyword(topic) {
                Some(sample) => {
                    let mut csr = IlCsr::default();
                    for (user, list) in &sample.il_entries {
                        csr.ids.extend_from_slice(list);
                        csr.close_list(*user);
                    }
                    (sample.meta, csr)
                }
                // θ_w dropped to 0 — shadow the base row with the same
                // empty row a from-scratch build records.
                None => (empty_keyword(topic), IlCsr::default()),
            };
            overlay.insert(topic, Arc::new(OverlayKeyword { meta, csr }));
        }

        let meta = union_meta(state, &prev, Some(&overlay));
        let generation = prev.generation + 1;
        let snapshot = DeltaSnapshot {
            base: prev.base.clone(),
            meta,
            overlay,
            generation,
            unflushed: state.unflushed,
        };
        *lock_write(&self.snapshot) = Arc::new(snapshot);
        Ok(generation)
    }

    /// Append a mutation batch to `root/delta.log` (exact f32 bits, one
    /// line per mutation).
    fn journal_append(&self, mutations: &[Mutation]) -> std::io::Result<()> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.root.join(DELTA_JOURNAL_FILE))?;
        let mut buf = String::new();
        for m in mutations {
            match *m {
                Mutation::IngestUser => buf.push_str("user\n"),
                Mutation::IngestEdge { from, to } => {
                    buf.push_str(&format!("edge\t{from}\t{to}\n"));
                }
                Mutation::SetTopicWeight { user, topic, weight } => {
                    buf.push_str(&format!("weight\t{user}\t{topic}\t{}\n", weight.to_bits()));
                }
            }
        }
        file.write_all(buf.as_bytes())?;
        file.flush()
    }

    /// Replay `root/delta.log` left by a previous process: fold every
    /// journaled mutation into the writer state and publish one snapshot
    /// covering all of them (without re-journaling).
    fn replay_journal(&self) -> Result<(), IndexError> {
        let path = self.root.join(DELTA_JOURNAL_FILE);
        let contents = match std::fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(storage_io(e)),
        };
        let mut mutations = Vec::new();
        for (i, line) in contents.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            mutations.push(parse_journal_line(line).ok_or_else(|| {
                IndexError::Corrupt(format!("delta.log line {}: unparseable {line:?}", i + 1))
            })?);
        }
        if mutations.is_empty() {
            return Ok(());
        }
        let mut state = lock(&self.writer);
        let dirty = apply_to_state(&mut state, &mutations);
        state.unflushed += mutations.len() as u64;
        self.publish(&state, dirty.as_ref())?;
        Ok(())
    }
}

/// Fold a validated batch into the writer state; returns the dirty
/// keyword set (`None` = all keywords, because `|V|` or the graph — and
/// with them every θ_w, idf, and the cascade model — changed).
fn apply_to_state(state: &mut DeltaState, mutations: &[Mutation]) -> Option<BTreeSet<TopicId>> {
    let mut dirty = Some(BTreeSet::new());
    for m in mutations {
        match *m {
            Mutation::IngestUser => {
                state.num_users += 1;
                dirty = None;
            }
            Mutation::IngestEdge { from, to } => {
                state.edges.push((from, to));
                dirty = None;
            }
            Mutation::SetTopicWeight { user, topic, weight } => {
                if weight == 0.0 {
                    state.entries.remove(&(user, topic));
                } else {
                    state.entries.insert((user, topic), weight);
                }
                if let Some(set) = dirty.as_mut() {
                    set.insert(topic);
                }
            }
        }
    }
    dirty
}

/// Rebuild the logical dataset from the writer state.
fn materialize_dataset(state: &DeltaState) -> (Graph, UserProfiles) {
    let graph = Graph::from_edges(state.num_users, &state.edges);
    let entries: Vec<(NodeId, TopicId, f32)> =
        state.entries.iter().map(|(&(u, t), &tf)| (u, t, tf)).collect();
    let profiles = UserProfiles::from_entries(state.num_users, state.num_topics, &entries);
    (graph, profiles)
}

/// The union catalog: base rows shadowed by overlay rows, under the
/// mutated universe. `overlay = None` reuses the previous snapshot's
/// overlay (the flush-verify path).
fn union_meta(
    state: &DeltaState,
    prev: &DeltaSnapshot,
    overlay: Option<&HashMap<TopicId, Arc<OverlayKeyword>>>,
) -> IndexMeta {
    let overlay = overlay.unwrap_or(&prev.overlay);
    let base_meta = prev.base.meta();
    let keywords = (0..state.num_topics)
        .map(|t| match overlay.get(&t) {
            Some(ov) => ov.meta.clone(),
            None => base_meta.keywords[t as usize].clone(),
        })
        .collect();
    IndexMeta {
        num_users: state.num_users,
        num_topics: state.num_topics,
        codec: base_meta.codec,
        variant: base_meta.variant,
        model_name: base_meta.model_name.clone(),
        keywords,
    }
}

/// The catalog row a from-scratch build records for a keyword with no
/// segment (mirrors `IndexBuilder::build_keyword`'s empty row exactly —
/// flush verification byte-compares encodings).
fn empty_keyword(topic: TopicId) -> KeywordMeta {
    KeywordMeta {
        topic,
        theta: 0,
        tf_sum: 0.0,
        idf: 0.0,
        opt_w: 0.0,
        max_list_len: 0,
        num_partitions: 0,
        total_rr_members: 0,
    }
}

/// Parse one `delta.log` line (see [`DeltaIndex::journal_append`]).
fn parse_journal_line(line: &str) -> Option<Mutation> {
    let mut parts = line.split('\t');
    match parts.next()? {
        "user" => Some(Mutation::IngestUser),
        "edge" => {
            let from = parts.next()?.parse().ok()?;
            let to = parts.next()?.parse().ok()?;
            Some(Mutation::IngestEdge { from, to })
        }
        "weight" => {
            let user = parts.next()?.parse().ok()?;
            let topic = parts.next()?.parse().ok()?;
            let bits: u32 = parts.next()?.parse().ok()?;
            Some(Mutation::SetTopicWeight { user, topic, weight: f32::from_bits(bits) })
        }
        _ => None,
    }
}

fn storage_io(e: std::io::Error) -> IndexError {
    IndexError::Storage(kbtim_storage::segment::StorageError::Io(e))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn lock_read<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|p| p.into_inner())
}

fn lock_write<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ThetaMode;
    use crate::format::IndexVariant;
    use kbtim_codec::Codec;
    use kbtim_core::theta::SamplingConfig;
    use kbtim_datagen::{Dataset, DatasetConfig, DatasetFamily};
    use kbtim_storage::{IoStats, TempDir};

    fn dataset() -> Dataset {
        DatasetConfig::family(DatasetFamily::News).num_users(300).num_topics(5).seed(17).build()
    }

    fn config() -> IndexBuildConfig {
        IndexBuildConfig {
            sampling: SamplingConfig { eps: 0.3, theta_cap: Some(500), ..SamplingConfig::fast() },
            codec: Codec::Packed,
            theta_mode: ThetaMode::Compact,
            variant: IndexVariant::Irr { partition_size: 16 },
            threads: 2,
            seed: 7,
            shards: 1,
        }
    }

    fn build_base(dir: &Path, data: &Dataset) -> Arc<KbtimIndex> {
        let model = IcModel::weighted_cascade(&data.graph);
        IndexBuilder::new(&model, &data.profiles, config()).build(dir).unwrap();
        Arc::new(KbtimIndex::open(dir, IoStats::new()).unwrap())
    }

    /// The from-scratch oracle: apply `mutations` to the dataset
    /// logically, build flat, query.
    fn oracle(data: &Dataset, mutations: &[Mutation], query: &Query) -> QueryOutcome {
        let mut num_users = data.profiles.num_users();
        let mut edges: Vec<(NodeId, NodeId)> = data.graph.edges().collect();
        let mut entries: BTreeMap<(NodeId, TopicId), f32> = BTreeMap::new();
        for user in 0..num_users {
            let (topics, tfs) = data.profiles.user_vector(user);
            for (&topic, &tf) in topics.iter().zip(tfs) {
                entries.insert((user, topic), tf);
            }
        }
        for m in mutations {
            match *m {
                Mutation::IngestUser => num_users += 1,
                Mutation::IngestEdge { from, to } => edges.push((from, to)),
                Mutation::SetTopicWeight { user, topic, weight } => {
                    if weight == 0.0 {
                        entries.remove(&(user, topic));
                    } else {
                        entries.insert((user, topic), weight);
                    }
                }
            }
        }
        let graph = Graph::from_edges(num_users, &edges);
        let flat: Vec<(NodeId, TopicId, f32)> =
            entries.iter().map(|(&(u, t), &tf)| (u, t, tf)).collect();
        let profiles = UserProfiles::from_entries(num_users, data.profiles.num_topics(), &flat);
        let model = IcModel::weighted_cascade(&graph);
        let tmp = TempDir::new("delta-oracle").unwrap();
        IndexBuilder::new(&model, &profiles, config()).build(tmp.path()).unwrap();
        let index = KbtimIndex::open(tmp.path(), IoStats::new()).unwrap();
        index.query_rr(query).unwrap()
    }

    fn assert_same(a: &QueryOutcome, b: &QueryOutcome) {
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.marginal_gains, b.marginal_gains);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.estimated_influence.to_bits(), b.estimated_influence.to_bits());
        assert_eq!(a.stats.theta_q, b.stats.theta_q);
    }

    #[test]
    fn snapshot_query_matches_from_scratch_build() {
        let data = dataset();
        let dir = TempDir::new("delta-base").unwrap();
        let base = build_base(dir.path(), &data);
        let delta = DeltaIndex::attach(base, &data.graph, &data.profiles, config()).unwrap();
        let query = Query::new([0u32, 2, 4], 5);

        // Unmutated: the union is the base.
        let muts: Vec<Mutation> = Vec::new();
        assert_same(&delta.snapshot().query(&query).unwrap(), &oracle(&data, &muts, &query));

        // Topic-weight mutations (single dirty keyword each).
        let muts = vec![
            Mutation::SetTopicWeight { user: 3, topic: 2, weight: 4.5 },
            Mutation::SetTopicWeight { user: 7, topic: 0, weight: 0.0 },
            Mutation::SetTopicWeight { user: 12, topic: 4, weight: 1.25 },
        ];
        delta.apply(&muts).unwrap();
        assert_same(&delta.snapshot().query(&query).unwrap(), &oracle(&data, &muts, &query));

        // Universe mutations (every keyword dirty).
        let mut all = muts.clone();
        let more = vec![
            Mutation::IngestUser,
            Mutation::IngestEdge { from: 300, to: 1 },
            Mutation::IngestEdge { from: 2, to: 300 },
            Mutation::SetTopicWeight { user: 300, topic: 2, weight: 9.0 },
        ];
        delta.apply(&more).unwrap();
        all.extend_from_slice(&more);
        assert_same(&delta.snapshot().query(&query).unwrap(), &oracle(&data, &all, &query));
        assert_eq!(delta.unflushed(), 7);
        assert_eq!(delta.generation(), 2);
    }

    #[test]
    fn flush_compacts_and_reopens_the_next_generation() {
        let data = dataset();
        let dir = TempDir::new("delta-flush").unwrap();
        let base = build_base(dir.path(), &data);
        let delta = DeltaIndex::attach(base, &data.graph, &data.profiles, config()).unwrap();
        let query = Query::new([1u32, 3], 4);
        let muts = vec![
            Mutation::SetTopicWeight { user: 5, topic: 1, weight: 3.0 },
            Mutation::IngestUser,
            Mutation::SetTopicWeight { user: 300, topic: 3, weight: 2.0 },
        ];
        delta.apply(&muts).unwrap();
        let before = delta.snapshot().query(&query).unwrap();

        assert_eq!(delta.flush().unwrap(), 1);
        let snap = delta.snapshot();
        assert_eq!(snap.base().generation(), 1);
        assert_eq!(snap.overlay_keywords(), 0);
        assert_eq!(delta.unflushed(), 0);
        assert!(!dir.path().join(DELTA_JOURNAL_FILE).exists());
        // Post-flush answers are bit-identical to the pre-flush union.
        assert_same(&snap.query(&query).unwrap(), &before);
        // The generation directory is self-describing: a fresh open of
        // the root resolves to it.
        let reopened = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        assert_eq!(reopened.generation(), 1);
        assert_same(&reopened.query_rr(&query).unwrap(), &before);
    }

    #[test]
    fn journal_replay_restores_unflushed_mutations() {
        let data = dataset();
        let dir = TempDir::new("delta-journal").unwrap();
        let base = build_base(dir.path(), &data);
        let query = Query::new([0u32, 1, 2], 3);
        let muts = vec![
            Mutation::SetTopicWeight { user: 9, topic: 0, weight: 0.75 },
            Mutation::IngestUser,
            Mutation::IngestEdge { from: 300, to: 9 },
        ];
        let before = {
            let delta =
                DeltaIndex::attach(base.clone(), &data.graph, &data.profiles, config()).unwrap();
            delta.apply(&muts).unwrap();
            delta.snapshot().query(&query).unwrap()
        };
        // A new attach (same process restartish) replays delta.log.
        let again = DeltaIndex::attach(base, &data.graph, &data.profiles, config()).unwrap();
        assert_eq!(again.unflushed(), 3);
        assert_same(&again.snapshot().query(&query).unwrap(), &before);
    }

    #[test]
    fn failed_flush_leaves_the_snapshot_untouched_and_retries_clean() {
        let data = dataset();
        let dir = TempDir::new("delta-flushfail").unwrap();
        let base = build_base(dir.path(), &data);
        let delta = DeltaIndex::attach(base, &data.graph, &data.profiles, config()).unwrap();
        let query = Query::new([2u32, 4], 3);
        delta.apply(&[Mutation::SetTopicWeight { user: 1, topic: 2, weight: 6.0 }]).unwrap();
        let before = delta.snapshot().query(&query).unwrap();

        for point in ["flush.build", "flush.verify", "flush.commit"] {
            kbtim_fault::arm(point, "err").unwrap();
            let err = delta.flush().unwrap_err();
            kbtim_fault::disarm(point);
            assert!(matches!(err, IndexError::Injected(_)), "{point}: {err}");
            let snap = delta.snapshot();
            assert_eq!(snap.base().generation(), 0, "{point} must not commit");
            assert_eq!(delta.unflushed(), 1, "{point} must not clear the journal");
            assert_same(&snap.query(&query).unwrap(), &before);
        }
        // Clean retry succeeds from scratch.
        assert_eq!(delta.flush().unwrap(), 1);
        assert_same(&delta.snapshot().query(&query).unwrap(), &before);
    }
}
