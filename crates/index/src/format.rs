//! On-disk layout of a KB-TIM index directory.
//!
//! ```text
//! <dir>/index.meta        catalog segment, one "meta" block
//! <dir>/kw_<topic>.seg    one segment per keyword with θ_w > 0
//! ```
//!
//! A **sharded** index (built with `shards > 1`) keeps the same global
//! catalog at `<dir>/index.meta` (byte-identical to the S = 1 build, so
//! Eqn-11 budgets and the cost model never depend on S) and moves the
//! keyword segments into per-shard subdirectories:
//!
//! ```text
//! <dir>/index.meta             global catalog (identical to S = 1)
//! <dir>/shards.manifest        universe split + per-shard fingerprints
//! <dir>/shard-<i>/index.meta   per-shard catalog (standalone-openable)
//! <dir>/shard-<i>/kw_<t>.seg   keyword segments restricted to the shard
//! ```
//!
//! Shard `i` owns the contiguous user range `[cuts[i], cuts[i + 1])`; its
//! keyword segments store each global RR set restricted to members in
//! that range (same set ids, possibly empty) and the inverted lists of
//! in-range users only. Because every user is a witness of its own RR
//! sets, an in-range user's rr-id list is *unchanged* from the global
//! build — concatenating shard inverted lists in shard order reproduces
//! the S = 1 block exactly, which is what makes sharded serving
//! bit-identical to the monolithic index.
//!
//! Keyword segment blocks (integer lists use the catalog's [`Codec`];
//! framing integers are LEB128 varints):
//!
//! | block    | contents                                                  |
//! |----------|-----------------------------------------------------------|
//! | `rr`     | `R_w`: θ_w RR sets, each a codec-encoded sorted node list |
//! | `rr_off` | θ_w + 1 little-endian `u64` byte offsets into `rr`        |
//! | `il`     | `L_w`: count, then per user: varint user, codec rr-id list|
//! | `ip`     | IRR `IP_w`: count, codec users, then varint first-ids     |
//! | `pmeta`  | IRR partition table (byte ranges, counts, kb bounds)      |
//! | `ilp`    | IRR `IL^p_w` partitions back to back (same entry format)  |
//! | `irp`    | IRR `IR^p_w` partitions: per set varint id + codec members|
//!
//! Every structure here is a pure byte transform with a round-trip test;
//! the I/O lives in `kbtim-storage`.

use crate::IndexError;
use kbtim_codec::{varint, Codec};
use kbtim_graph::NodeId;
use kbtim_topics::TopicId;

/// Catalog file name inside the index directory.
pub const META_FILE: &str = "index.meta";
/// Catalog block name.
pub const META_BLOCK: &str = "meta";
/// RR-set data block.
pub const RR_BLOCK: &str = "rr";
/// RR-set offset table block.
pub const RR_OFF_BLOCK: &str = "rr_off";
/// Inverted-list block.
pub const IL_BLOCK: &str = "il";
/// IRR first-occurrence block.
pub const IP_BLOCK: &str = "ip";
/// IRR partition-table block.
pub const PMETA_BLOCK: &str = "pmeta";
/// IRR sorted/partitioned inverted lists.
pub const ILP_BLOCK: &str = "ilp";
/// IRR partitioned RR sets.
pub const IRP_BLOCK: &str = "irp";

/// Segment file name for a keyword.
pub fn keyword_file_name(topic: TopicId) -> String {
    format!("kw_{topic:05}.seg")
}

/// Shard-manifest file name inside a sharded index directory. Its
/// presence is the discriminator between the legacy flat layout (S = 1)
/// and the sharded layout on open.
pub const SHARD_MANIFEST_FILE: &str = "shards.manifest";
/// Shard-manifest block name.
pub const SHARD_MANIFEST_BLOCK: &str = "shards";

/// Subdirectory name for one shard of a sharded index.
pub fn shard_dir_name(shard: usize) -> String {
    format!("shard-{shard}")
}

/// The contiguous user-range boundaries for `shards` shards over
/// `num_users` users: `cuts[i] = ⌊num_users · i / shards⌋`, so shard `i`
/// owns `[cuts[i], cuts[i + 1])`. Always `shards + 1` entries, first 0,
/// last `num_users`; ranges may be empty when `shards > num_users`.
pub fn shard_cuts(num_users: u32, shards: usize) -> Vec<u32> {
    assert!(shards > 0, "an index has at least one shard");
    (0..=shards).map(|i| (num_users as u64 * i as u64 / shards as u64) as u32).collect()
}

/// The `shards.manifest` payload: the universe split and one build
/// fingerprint per shard, so a reflushed/replaced shard is detectable
/// without re-reading every segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// `|V|` the split partitions; must match the global catalog.
    pub num_users: u32,
    /// `num_shards + 1` range boundaries (see [`shard_cuts`]).
    pub cuts: Vec<u32>,
    /// One FNV-1a fingerprint per shard over its (topic, segment bytes)
    /// pairs, stamped at build time.
    pub fingerprints: Vec<u64>,
}

impl ShardManifest {
    /// Number of shards the manifest describes.
    pub fn num_shards(&self) -> usize {
        self.fingerprints.len()
    }

    /// Serialize the manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        varint::write_u32(self.num_users, &mut out);
        varint::write_u32(self.cuts.len() as u32, &mut out);
        for &cut in &self.cuts {
            varint::write_u32(cut, &mut out);
        }
        varint::write_u32(self.fingerprints.len() as u32, &mut out);
        for &fp in &self.fingerprints {
            out.extend_from_slice(&fp.to_le_bytes());
        }
        out
    }

    /// Deserialize a manifest written by [`ShardManifest::encode`].
    pub fn decode(input: &[u8]) -> Result<ShardManifest, IndexError> {
        let mut cursor = Cursor::new(input);
        let num_users = cursor.u32()?;
        let cut_count = cursor.u32()? as usize;
        let mut cuts = Vec::with_capacity(cut_count);
        for _ in 0..cut_count {
            cuts.push(cursor.u32()?);
        }
        let fp_count = cursor.u32()? as usize;
        let mut fingerprints = Vec::with_capacity(fp_count);
        for _ in 0..fp_count {
            let bytes: [u8; 8] = cursor.bytes(8)?.try_into().expect("fixed length");
            fingerprints.push(u64::from_le_bytes(bytes));
        }
        cursor.expect_end()?;
        let manifest = ShardManifest { num_users, cuts, fingerprints };
        if manifest.cuts.len() != manifest.fingerprints.len() + 1
            || manifest.fingerprints.is_empty()
            || manifest.cuts.first() != Some(&0)
            || manifest.cuts.last() != Some(&manifest.num_users)
            || manifest.cuts.windows(2).any(|w| w[0] > w[1])
        {
            return Err(IndexError::Corrupt("shard manifest split is inconsistent".into()));
        }
        Ok(manifest)
    }
}

/// Whether the index carries IRR partition blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexVariant {
    /// Plain RR index (§4): `rr`, `rr_off`, `il` only.
    Rr,
    /// IRR index (§5) with the given partition size δ; supports both query
    /// algorithms.
    Irr {
        /// Users per `IL^p_w` partition (the paper uses δ = 100).
        partition_size: u32,
    },
}

impl IndexVariant {
    fn tag(&self) -> u8 {
        match self {
            IndexVariant::Rr => 0,
            IndexVariant::Irr { .. } => 1,
        }
    }
}

/// Catalog entry for one keyword.
#[derive(Debug, Clone, PartialEq)]
pub struct KeywordMeta {
    /// The topic this entry indexes.
    pub topic: TopicId,
    /// Number of RR sets stored (`θ_w`, Eqn 8 or Eqn 10). 0 = no segment.
    pub theta: u64,
    /// `Σ_v tf(w, v)` at build time.
    pub tf_sum: f64,
    /// `idf(w)` at build time (needed to form `p_w` at query time).
    pub idf: f64,
    /// The estimated `OPT^w` used in the θ denominator.
    pub opt_w: f64,
    /// Longest inverted list (the initial `kb[w]` bound of Algorithm 4).
    pub max_list_len: u32,
    /// Number of IRR partitions (0 for the RR variant).
    pub num_partitions: u32,
    /// Sum of RR-set sizes (for mean-size statistics, Table 5).
    pub total_rr_members: u64,
}

/// Catalog of an index directory.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexMeta {
    /// `|V|` the index was built for.
    pub num_users: u32,
    /// Topic-space size; `keywords` has exactly this many entries.
    pub num_topics: u32,
    /// Codec used for every integer list.
    pub codec: Codec,
    /// RR or IRR layout.
    pub variant: IndexVariant,
    /// Propagation model name recorded at build time ("IC" / "LT").
    pub model_name: String,
    /// Per-topic entries, indexed by topic id.
    pub keywords: Vec<KeywordMeta>,
}

impl IndexMeta {
    /// Serialize the catalog.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        varint::write_u32(self.num_users, &mut out);
        varint::write_u32(self.num_topics, &mut out);
        out.push(self.codec.tag());
        out.push(self.variant.tag());
        match self.variant {
            IndexVariant::Rr => varint::write_u32(0, &mut out),
            IndexVariant::Irr { partition_size } => varint::write_u32(partition_size, &mut out),
        }
        varint::write_u32(self.model_name.len() as u32, &mut out);
        out.extend_from_slice(self.model_name.as_bytes());
        varint::write_u32(self.keywords.len() as u32, &mut out);
        for kw in &self.keywords {
            varint::write_u32(kw.topic, &mut out);
            varint::write_u64(kw.theta, &mut out);
            out.extend_from_slice(&kw.tf_sum.to_bits().to_le_bytes());
            out.extend_from_slice(&kw.idf.to_bits().to_le_bytes());
            out.extend_from_slice(&kw.opt_w.to_bits().to_le_bytes());
            varint::write_u32(kw.max_list_len, &mut out);
            varint::write_u32(kw.num_partitions, &mut out);
            varint::write_u64(kw.total_rr_members, &mut out);
        }
        out
    }

    /// Deserialize a catalog written by [`IndexMeta::encode`].
    pub fn decode(input: &[u8]) -> Result<IndexMeta, IndexError> {
        let mut cursor = Cursor::new(input);
        let num_users = cursor.u32()?;
        let num_topics = cursor.u32()?;
        let codec = Codec::from_tag(cursor.byte()?)
            .ok_or_else(|| IndexError::Corrupt("unknown codec tag".into()))?;
        let variant_tag = cursor.byte()?;
        let partition_size = cursor.u32()?;
        let variant = match variant_tag {
            0 => IndexVariant::Rr,
            1 => IndexVariant::Irr { partition_size },
            t => return Err(IndexError::Corrupt(format!("unknown variant tag {t}"))),
        };
        let name_len = cursor.u32()? as usize;
        let model_name = String::from_utf8(cursor.bytes(name_len)?.to_vec())
            .map_err(|_| IndexError::Corrupt("model name not utf-8".into()))?;
        let count = cursor.u32()? as usize;
        let mut keywords = Vec::with_capacity(count);
        for _ in 0..count {
            keywords.push(KeywordMeta {
                topic: cursor.u32()?,
                theta: cursor.u64()?,
                tf_sum: cursor.f64()?,
                idf: cursor.f64()?,
                opt_w: cursor.f64()?,
                max_list_len: cursor.u32()?,
                num_partitions: cursor.u32()?,
                total_rr_members: cursor.u64()?,
            });
        }
        if keywords.len() != num_topics as usize {
            return Err(IndexError::Corrupt(format!(
                "catalog lists {} keywords for {num_topics} topics",
                keywords.len()
            )));
        }
        Ok(IndexMeta { num_users, num_topics, codec, variant, model_name, keywords })
    }
}

/// One inverted-list entry: a user and the (ascending) ids of the RR sets
/// containing it.
pub type IlEntry = (NodeId, Vec<u32>);

/// Encode an inverted-list block (`il` or one `ilp` partition): count then
/// per-entry varint user + codec list.
pub fn encode_il_entries(entries: &[IlEntry], codec: Codec, out: &mut Vec<u8>) {
    varint::write_u32(entries.len() as u32, out);
    for (user, list) in entries {
        varint::write_u32(*user, out);
        codec.encode_sorted(list, out);
    }
}

/// Decode a block written by [`encode_il_entries`].
///
/// Allocating oracle (one `Vec` per user) for tests and
/// [`crate::KbtimIndex::validate`]; hot paths use [`decode_il_csr_into`].
#[doc(hidden)]
pub fn decode_il_entries(input: &[u8], codec: Codec) -> Result<Vec<IlEntry>, IndexError> {
    let mut cursor = Cursor::new(input);
    let count = cursor.u32()? as usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let user = cursor.u32()?;
        let list = cursor.list(codec)?;
        entries.push((user, list));
    }
    cursor.expect_end()?;
    Ok(entries)
}

/// A decoded inverted-list block in flat CSR form: one `ids` arena plus
/// per-user offsets — the hot-path twin of [`decode_il_entries`] with no
/// per-user heap allocation. `users[i]`'s rr-id list is
/// `ids[offsets[i]..offsets[i + 1]]`; `offsets` is always non-empty and
/// starts at 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IlCsr {
    /// Users in block order (ascending for the `il` block).
    pub users: Vec<NodeId>,
    /// `users.len() + 1` boundaries into `ids`.
    pub offsets: Vec<u32>,
    /// All rr-id lists, back to back.
    pub ids: Vec<u32>,
}

impl Default for IlCsr {
    /// Empty CSR with the invariant `offsets == [0]` already in place.
    fn default() -> IlCsr {
        IlCsr { users: Vec::new(), offsets: vec![0], ids: Vec::new() }
    }
}

impl IlCsr {
    /// Append one user's list boundary after pushing its ids into
    /// [`IlCsr::ids`]. Guards the u32 offset against arena overflow.
    pub fn close_list(&mut self, user: NodeId) {
        self.users.push(user);
        self.offsets.push(u32::try_from(self.ids.len()).expect("IL arena exceeds u32 offsets"));
    }

    /// Reset to the empty state (`offsets == [0]`), keeping the arena
    /// capacities — the scratch-pool reset between queries.
    pub fn reset(&mut self) {
        self.users.clear();
        self.ids.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }
    /// Number of users in the block.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the block holds no users.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The rr-id list of the `i`-th user.
    #[inline]
    pub fn list(&self, i: usize) -> &[u32] {
        &self.ids[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Exact heap footprint of the three arenas, in bytes.
    pub fn arena_bytes(&self) -> u64 {
        (self.ids.len() * 4 + self.offsets.len() * 4 + self.users.len() * 4) as u64
    }

    /// Append every list of `other` after this block's lists, rebasing
    /// offsets. Concatenating shard IL blocks in shard order with this
    /// reproduces the monolithic (S = 1) block byte-for-byte, because
    /// shards own contiguous, ascending user ranges.
    pub fn append(&mut self, other: &IlCsr) {
        let base = u32::try_from(self.ids.len()).expect("IL arena exceeds u32 offsets");
        self.ids.extend_from_slice(&other.ids);
        self.users.extend_from_slice(&other.users);
        self.offsets.extend(other.offsets[1..].iter().map(|&o| o + base));
    }
}

/// Decode a block written by [`encode_il_entries`] straight into a flat
/// [`IlCsr`] (the codec appends each list to the shared `ids` arena).
pub fn decode_il_csr(input: &[u8], codec: Codec) -> Result<IlCsr, IndexError> {
    let mut csr = IlCsr::default();
    decode_il_csr_into(input, codec, &mut csr)?;
    Ok(csr)
}

/// [`decode_il_csr`] into a caller-owned (scratch-pooled) CSR, reset
/// first; steady-state decodes allocate nothing once the arenas are
/// warm.
pub fn decode_il_csr_into(input: &[u8], codec: Codec, csr: &mut IlCsr) -> Result<(), IndexError> {
    csr.reset();
    let mut cursor = Cursor::new(input);
    let count = cursor.u32()? as usize;
    csr.users.reserve(count);
    csr.offsets.reserve(count + 1);
    for _ in 0..count {
        csr.users.push(cursor.u32()?);
        cursor.list_into(codec, &mut csr.ids)?;
        let end = u32::try_from(csr.ids.len())
            .map_err(|_| IndexError::Corrupt("il block exceeds u32 arena offsets".into()))?;
        csr.offsets.push(end);
    }
    cursor.expect_end()?;
    Ok(())
}

/// Encode the `ip` block: users ascending, plus their first-occurrence RR
/// ids (parallel, unsorted → plain varints).
pub fn encode_ip(users: &[NodeId], firsts: &[u32], codec: Codec, out: &mut Vec<u8>) {
    assert_eq!(users.len(), firsts.len());
    varint::write_u32(users.len() as u32, out);
    codec.encode_sorted(users, out);
    for &f in firsts {
        varint::write_u32(f, out);
    }
}

/// Decode the `ip` block into parallel `(users, firsts)`.
pub fn decode_ip(input: &[u8], codec: Codec) -> Result<(Vec<NodeId>, Vec<u32>), IndexError> {
    let mut users = Vec::new();
    let mut firsts = Vec::new();
    decode_ip_into(input, codec, &mut users, &mut firsts)?;
    Ok((users, firsts))
}

/// [`decode_ip`] into caller-owned (scratch-pooled) buffers, cleared
/// first; steady-state decodes allocate nothing once the buffers are
/// warm.
pub fn decode_ip_into(
    input: &[u8],
    codec: Codec,
    users: &mut Vec<NodeId>,
    firsts: &mut Vec<u32>,
) -> Result<(), IndexError> {
    let mut cursor = Cursor::new(input);
    let count = cursor.u32()? as usize;
    users.clear();
    cursor.list_into(codec, users)?;
    if users.len() != count {
        return Err(IndexError::Corrupt("ip user count mismatch".into()));
    }
    firsts.clear();
    firsts.reserve(count);
    for _ in 0..count {
        firsts.push(cursor.u32()?);
    }
    cursor.expect_end()?;
    Ok(())
}

/// Every `IR_SAMPLE_EVERY`-th IR entry gets an (id, byte-offset) sample so
/// queries can load only the `rr_id < θ^Q_w` prefix of a partition instead
/// of the whole thing.
pub const IR_SAMPLE_EVERY: usize = 16;

/// Catalog row for one IRR partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMeta {
    /// Byte range of this partition inside the `ilp` block.
    pub il_start: u64,
    /// End of the `ilp` range (exclusive).
    pub il_end: u64,
    /// Byte range of this partition inside the `irp` block.
    pub ir_start: u64,
    /// End of the `irp` range (exclusive).
    pub ir_end: u64,
    /// RR sets first covered by this partition (= entries in its `irp`).
    pub rr_count: u32,
    /// Users in this partition (≤ δ).
    pub user_count: u32,
    /// Longest inverted list in any *later* partition — the `kb[w]` bound
    /// after loading this partition (0 for the last one).
    pub max_len_after: u32,
    /// Sparse `(rr_id, byte offset within this partition's irp range)`
    /// samples at entry boundaries, every [`IR_SAMPLE_EVERY`] entries
    /// (entry 0 included). Ids and offsets both ascend.
    pub ir_samples: Vec<(u32, u64)>,
}

impl PartitionMeta {
    /// Byte length of the partition's IR prefix containing every entry
    /// with `rr_id < limit` (may additionally cover up to
    /// `IR_SAMPLE_EVERY - 1` later entries, which the decoder skips).
    pub fn ir_prefix_len(&self, limit: u64) -> u64 {
        let total = self.ir_end - self.ir_start;
        // First sample whose id is >= limit bounds the range.
        match self.ir_samples.iter().find(|&&(id, _)| id as u64 >= limit) {
            Some(&(_, offset)) => offset.min(total),
            None => total,
        }
    }
}

/// Encode the `pmeta` block.
pub fn encode_partition_meta(parts: &[PartitionMeta], out: &mut Vec<u8>) {
    varint::write_u32(parts.len() as u32, out);
    for p in parts {
        varint::write_u64(p.il_start, out);
        varint::write_u64(p.il_end, out);
        varint::write_u64(p.ir_start, out);
        varint::write_u64(p.ir_end, out);
        varint::write_u32(p.rr_count, out);
        varint::write_u32(p.user_count, out);
        varint::write_u32(p.max_len_after, out);
        varint::write_u32(p.ir_samples.len() as u32, out);
        let mut prev_id = 0u32;
        let mut prev_off = 0u64;
        for &(id, off) in &p.ir_samples {
            varint::write_u32(id - prev_id, out);
            varint::write_u64(off - prev_off, out);
            prev_id = id;
            prev_off = off;
        }
    }
}

/// Decode the `pmeta` block.
pub fn decode_partition_meta(input: &[u8]) -> Result<Vec<PartitionMeta>, IndexError> {
    let mut parts = Vec::new();
    decode_partition_meta_into(input, &mut parts)?;
    Ok(parts)
}

/// [`decode_partition_meta`] into a caller-owned (scratch-pooled) vec.
/// Rows already present are overwritten in place so their `ir_samples`
/// buffers are reused; steady-state decodes allocate nothing once the
/// catalog shapes are warm.
pub fn decode_partition_meta_into(
    input: &[u8],
    parts: &mut Vec<PartitionMeta>,
) -> Result<(), IndexError> {
    let mut cursor = Cursor::new(input);
    let count = cursor.u32()? as usize;
    parts.truncate(count);
    for i in 0..count {
        if parts.len() <= i {
            parts.push(PartitionMeta {
                il_start: 0,
                il_end: 0,
                ir_start: 0,
                ir_end: 0,
                rr_count: 0,
                user_count: 0,
                max_len_after: 0,
                ir_samples: Vec::new(),
            });
        }
        let part = &mut parts[i];
        part.il_start = cursor.u64()?;
        part.il_end = cursor.u64()?;
        part.ir_start = cursor.u64()?;
        part.ir_end = cursor.u64()?;
        part.rr_count = cursor.u32()?;
        part.user_count = cursor.u32()?;
        part.max_len_after = cursor.u32()?;
        let sample_count = cursor.u32()? as usize;
        part.ir_samples.clear();
        part.ir_samples.reserve(sample_count);
        let mut prev_id = 0u32;
        let mut prev_off = 0u64;
        for _ in 0..sample_count {
            prev_id += cursor.u32()?;
            prev_off += cursor.u64()?;
            part.ir_samples.push((prev_id, prev_off));
        }
    }
    cursor.expect_end()?;
    Ok(())
}

/// One partitioned RR set: its per-keyword ordinal id and sorted members.
pub type IrEntry = (u32, Vec<NodeId>);

/// Encode one `irp` partition: entries back to back (varint id + codec
/// members, ids ascending), **no count header** — partitions are read as
/// byte ranges whose boundaries always fall on entry boundaries, so the
/// decoder simply consumes the buffer. Returns the sparse offset samples
/// for [`PartitionMeta::ir_samples`].
pub fn encode_ir_entries(entries: &[IrEntry], codec: Codec, out: &mut Vec<u8>) -> Vec<(u32, u64)> {
    let base = out.len() as u64;
    let mut samples = Vec::with_capacity(entries.len() / IR_SAMPLE_EVERY + 1);
    for (i, (id, members)) in entries.iter().enumerate() {
        if i % IR_SAMPLE_EVERY == 0 {
            samples.push((*id, out.len() as u64 - base));
        }
        varint::write_u32(*id, out);
        codec.encode_sorted(members, out);
    }
    samples
}

/// Count (and fully decode, for faithful query-time cost) the entries of
/// an `irp` byte range, without materializing per-set `Vec`s: every
/// member list decodes into the reused `scratch` buffer. `limit`
/// truncates at the first id `>= limit`, like [`decode_ir_entries`].
pub fn count_ir_entries(
    input: &[u8],
    codec: Codec,
    limit: u32,
    scratch: &mut Vec<u32>,
) -> Result<u64, IndexError> {
    let mut cursor = Cursor::new(input);
    let mut count = 0u64;
    while !cursor.at_end() {
        let id = cursor.u32()?;
        if id >= limit {
            break;
        }
        scratch.clear();
        cursor.list_into(codec, scratch)?;
        count += 1;
    }
    Ok(count)
}

/// Decode an `irp` byte range written by [`encode_ir_entries`], consuming
/// the whole buffer. `limit` truncates decoding at the first id `>= limit`
/// (`u32::MAX` decodes everything).
///
/// Allocating oracle (one `Vec` per set) for tests and
/// [`crate::KbtimIndex::validate`]; the query path counts through
/// [`count_ir_entries`] with a reused scratch arena instead.
#[doc(hidden)]
pub fn decode_ir_entries(
    input: &[u8],
    codec: Codec,
    limit: u32,
) -> Result<Vec<IrEntry>, IndexError> {
    let mut cursor = Cursor::new(input);
    let mut entries = Vec::new();
    while !cursor.at_end() {
        let id = cursor.u32()?;
        if id >= limit {
            break;
        }
        let members = cursor.list(codec)?;
        entries.push((id, members));
    }
    Ok(entries)
}

/// Decode a prefix of the `rr` block containing `count` RR sets.
///
/// Allocating oracle for tests and [`crate::KbtimIndex::validate`]; the
/// query paths bulk-decode with [`decode_rr_prefix_into`] instead.
#[doc(hidden)]
pub fn decode_rr_prefix(
    input: &[u8],
    count: u64,
    codec: Codec,
) -> Result<Vec<Vec<NodeId>>, IndexError> {
    let mut sets = Vec::with_capacity(count as usize);
    let mut pos = 0usize;
    for _ in 0..count {
        let mut members = Vec::new();
        pos += codec.decode_sorted(&input[pos..], &mut members)?;
        sets.push(members);
    }
    Ok(sets)
}

/// Bulk-decode a prefix of the `rr` block containing `count` RR sets
/// into one members arena plus per-set end boundaries (`ends[0] == 0`,
/// set `i` is `members[ends[i]..ends[i + 1]]`). The hot twin of
/// [`decode_rr_prefix`]: no per-set `Vec`, straight from the (possibly
/// memory-mapped) block bytes into pooled arenas.
pub fn decode_rr_prefix_into(
    input: &[u8],
    count: u64,
    codec: Codec,
    members: &mut Vec<u32>,
    ends: &mut Vec<u32>,
) -> Result<(), IndexError> {
    members.clear();
    ends.clear();
    ends.push(0);
    codec.decode_lists_into(input, count as usize, members, ends)?;
    Ok(())
}

/// Byte cursor with varint helpers over a borrowed buffer.
struct Cursor<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a [u8]) -> Cursor<'a> {
        Cursor { input, pos: 0 }
    }

    fn byte(&mut self) -> Result<u8, IndexError> {
        let b = *self
            .input
            .get(self.pos)
            .ok_or(IndexError::Codec(kbtim_codec::CodecError::UnexpectedEof))?;
        self.pos += 1;
        Ok(b)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], IndexError> {
        if self.pos + n > self.input.len() {
            return Err(IndexError::Codec(kbtim_codec::CodecError::UnexpectedEof));
        }
        let slice = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, IndexError> {
        let (v, used) = varint::read_u32(&self.input[self.pos..])?;
        self.pos += used;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, IndexError> {
        let (v, used) = varint::read_u64(&self.input[self.pos..])?;
        self.pos += used;
        Ok(v)
    }

    fn f64(&mut self) -> Result<f64, IndexError> {
        let bytes: [u8; 8] = self.bytes(8)?.try_into().expect("fixed length");
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    fn list(&mut self, codec: Codec) -> Result<Vec<u32>, IndexError> {
        let mut out = Vec::new();
        self.list_into(codec, &mut out)?;
        Ok(out)
    }

    /// Decode one codec list, *appending* to `out` (arena-friendly).
    fn list_into(&mut self, codec: Codec, out: &mut Vec<u32>) -> Result<(), IndexError> {
        let used = codec.decode_sorted(&self.input[self.pos..], out)?;
        self.pos += used;
        Ok(())
    }

    fn at_end(&self) -> bool {
        self.pos == self.input.len()
    }

    fn expect_end(&self) -> Result<(), IndexError> {
        if self.pos != self.input.len() {
            return Err(IndexError::Corrupt(format!(
                "{} trailing bytes after block payload",
                self.input.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> IndexMeta {
        IndexMeta {
            num_users: 1000,
            num_topics: 3,
            codec: Codec::Packed,
            variant: IndexVariant::Irr { partition_size: 100 },
            model_name: "IC".to_string(),
            keywords: vec![
                KeywordMeta {
                    topic: 0,
                    theta: 500,
                    tf_sum: 123.5,
                    idf: 2.5,
                    opt_w: 17.25,
                    max_list_len: 44,
                    num_partitions: 3,
                    total_rr_members: 1200,
                },
                KeywordMeta {
                    topic: 1,
                    theta: 0,
                    tf_sum: 0.0,
                    idf: 0.0,
                    opt_w: 0.0,
                    max_list_len: 0,
                    num_partitions: 0,
                    total_rr_members: 0,
                },
                KeywordMeta {
                    topic: 2,
                    theta: 9,
                    tf_sum: 1.0,
                    idf: 1.0,
                    opt_w: 0.5,
                    max_list_len: 3,
                    num_partitions: 1,
                    total_rr_members: 21,
                },
            ],
        }
    }

    #[test]
    fn meta_roundtrip() {
        let meta = sample_meta();
        let bytes = meta.encode();
        let decoded = IndexMeta::decode(&bytes).unwrap();
        assert_eq!(meta, decoded);
    }

    #[test]
    fn meta_rr_variant_roundtrip() {
        let mut meta = sample_meta();
        meta.variant = IndexVariant::Rr;
        let decoded = IndexMeta::decode(&meta.encode()).unwrap();
        assert_eq!(decoded.variant, IndexVariant::Rr);
    }

    #[test]
    fn meta_truncation_detected() {
        let bytes = sample_meta().encode();
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(IndexMeta::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn il_entries_roundtrip() {
        let entries: Vec<IlEntry> = vec![(3, vec![0, 5, 9, 200]), (7, vec![]), (900, vec![1])];
        for codec in [Codec::Raw, Codec::Packed] {
            let mut buf = Vec::new();
            encode_il_entries(&entries, codec, &mut buf);
            assert_eq!(decode_il_entries(&buf, codec).unwrap(), entries);
        }
    }

    #[test]
    fn il_csr_matches_entries_decoder() {
        let entries: Vec<IlEntry> =
            vec![(3, vec![0, 5, 9, 200]), (7, vec![]), (11, vec![4]), (900, vec![1, 2])];
        for codec in [Codec::Raw, Codec::Packed] {
            let mut buf = Vec::new();
            encode_il_entries(&entries, codec, &mut buf);
            let csr = decode_il_csr(&buf, codec).unwrap();
            assert_eq!(csr.len(), entries.len());
            for (i, (user, list)) in entries.iter().enumerate() {
                assert_eq!(csr.users[i], *user);
                assert_eq!(csr.list(i), list.as_slice());
            }
            assert_eq!(csr.arena_bytes(), ((7 + 5 + 4) * 4) as u64);
        }
    }

    #[test]
    fn il_csr_rejects_trailing_bytes() {
        let mut buf = Vec::new();
        encode_il_entries(&[(1, vec![2])], Codec::Raw, &mut buf);
        buf.push(0xff);
        assert!(decode_il_csr(&buf, Codec::Raw).is_err());
    }

    #[test]
    fn count_ir_entries_matches_decode() {
        let entries: Vec<IrEntry> =
            vec![(0, vec![1]), (5, vec![2, 3]), (9, vec![]), (12, vec![7, 8, 9])];
        for codec in [Codec::Raw, Codec::Packed] {
            let mut buf = Vec::new();
            encode_ir_entries(&entries, codec, &mut buf);
            let mut scratch = Vec::new();
            for limit in [0u32, 1, 6, 10, u32::MAX] {
                let counted = count_ir_entries(&buf, codec, limit, &mut scratch).unwrap();
                let decoded = decode_ir_entries(&buf, codec, limit).unwrap();
                assert_eq!(counted, decoded.len() as u64, "limit {limit}");
            }
        }
    }

    #[test]
    fn ip_roundtrip() {
        let users = vec![1u32, 5, 8, 100];
        let firsts = vec![40u32, 0, 7, 3];
        for codec in [Codec::Raw, Codec::Packed] {
            let mut buf = Vec::new();
            encode_ip(&users, &firsts, codec, &mut buf);
            let (u, f) = decode_ip(&buf, codec).unwrap();
            assert_eq!(u, users);
            assert_eq!(f, firsts);
        }
    }

    #[test]
    fn partition_meta_roundtrip() {
        let parts = vec![
            PartitionMeta {
                il_start: 0,
                il_end: 100,
                ir_start: 0,
                ir_end: 400,
                rr_count: 12,
                user_count: 100,
                max_len_after: 7,
                ir_samples: vec![(0, 0), (40, 128), (200, 320)],
            },
            PartitionMeta {
                il_start: 100,
                il_end: 130,
                ir_start: 400,
                ir_end: 410,
                rr_count: 1,
                user_count: 30,
                max_len_after: 0,
                ir_samples: vec![(3, 0)],
            },
        ];
        let mut buf = Vec::new();
        encode_partition_meta(&parts, &mut buf);
        assert_eq!(decode_partition_meta(&buf).unwrap(), parts);
    }

    #[test]
    fn ir_entries_roundtrip() {
        let entries: Vec<IrEntry> = vec![(0, vec![1, 2, 3]), (5, vec![9]), (6, vec![])];
        for codec in [Codec::Raw, Codec::Packed] {
            let mut buf = Vec::new();
            let samples = encode_ir_entries(&entries, codec, &mut buf);
            assert_eq!(samples[0], (0, 0));
            assert_eq!(decode_ir_entries(&buf, codec, u32::MAX).unwrap(), entries);
        }
    }

    #[test]
    fn ir_entries_limit_truncates() {
        let entries: Vec<IrEntry> = vec![(0, vec![1]), (5, vec![2]), (9, vec![3]), (12, vec![])];
        let mut buf = Vec::new();
        encode_ir_entries(&entries, Codec::Packed, &mut buf);
        let decoded = decode_ir_entries(&buf, Codec::Packed, 9).unwrap();
        assert_eq!(decoded, &entries[..2]);
    }

    #[test]
    fn ir_prefix_len_bounds() {
        // 40 entries → samples at 0, 16, 32.
        let entries: Vec<IrEntry> = (0..40u32).map(|i| (i * 2, vec![i])).collect();
        let mut buf = Vec::new();
        let samples = encode_ir_entries(&entries, Codec::Packed, &mut buf);
        assert_eq!(samples.len(), 3);
        let meta = PartitionMeta {
            il_start: 0,
            il_end: 0,
            ir_start: 1000,
            ir_end: 1000 + buf.len() as u64,
            rr_count: 40,
            user_count: 40,
            max_len_after: 0,
            ir_samples: samples.clone(),
        };
        // Limit below the second sample's id cuts at that sample.
        let cut = meta.ir_prefix_len(10);
        assert_eq!(cut, samples[1].1);
        // The cut range decodes exactly the entries with id < 32 (first 16).
        let decoded = decode_ir_entries(&buf[..cut as usize], Codec::Packed, 10).unwrap();
        assert_eq!(decoded.len(), 5, "ids 0,2,4,6,8");
        // A huge limit spans everything.
        assert_eq!(meta.ir_prefix_len(u64::MAX), buf.len() as u64);
    }

    #[test]
    fn rr_prefix_decoding() {
        let sets: Vec<Vec<NodeId>> = vec![vec![1, 2], vec![7], vec![0, 100, 200]];
        let codec = Codec::Packed;
        let mut buf = Vec::new();
        for s in &sets {
            codec.encode_sorted(s, &mut buf);
        }
        let two = decode_rr_prefix(&buf, 2, codec).unwrap();
        assert_eq!(two, &sets[..2]);
        let all = decode_rr_prefix(&buf, 3, codec).unwrap();
        assert_eq!(all, sets);
    }

    #[test]
    fn rr_prefix_into_matches_oracle() {
        let sets: Vec<Vec<NodeId>> = vec![vec![1, 2], vec![7], vec![0, 100, 200], vec![]];
        for codec in [Codec::Raw, Codec::Packed] {
            let mut buf = Vec::new();
            for s in &sets {
                codec.encode_sorted(s, &mut buf);
            }
            // Reused arenas with stale contents must be overwritten.
            let mut members = vec![999u32; 50];
            let mut ends = vec![7u32; 9];
            for count in [0u64, 2, 4] {
                decode_rr_prefix_into(&buf, count, codec, &mut members, &mut ends).unwrap();
                let oracle = decode_rr_prefix(&buf, count, codec).unwrap();
                assert_eq!(ends.len() as u64, count + 1);
                for (i, set) in oracle.iter().enumerate() {
                    assert_eq!(
                        &members[ends[i] as usize..ends[i + 1] as usize],
                        set.as_slice(),
                        "{codec:?} count {count} set {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn il_csr_into_reuses_and_resets() {
        let entries: Vec<IlEntry> = vec![(3, vec![0, 5]), (7, vec![]), (11, vec![4])];
        let mut buf = Vec::new();
        encode_il_entries(&entries, Codec::Packed, &mut buf);
        let mut csr = IlCsr::default();
        csr.ids.extend([9, 9, 9]); // stale content from a previous query
        csr.close_list(1);
        decode_il_csr_into(&buf, Codec::Packed, &mut csr).unwrap();
        assert_eq!(csr, decode_il_csr(&buf, Codec::Packed).unwrap());
        csr.reset();
        assert!(csr.is_empty());
        assert_eq!(csr.offsets, vec![0]);
    }

    #[test]
    fn keyword_file_names_are_stable() {
        assert_eq!(keyword_file_name(0), "kw_00000.seg");
        assert_eq!(keyword_file_name(42), "kw_00042.seg");
    }

    #[test]
    fn shard_dir_names_are_stable() {
        assert_eq!(shard_dir_name(0), "shard-0");
        assert_eq!(shard_dir_name(7), "shard-7");
    }

    #[test]
    fn shard_cuts_partition_the_universe() {
        for (num_users, shards) in [(1000u32, 1usize), (1000, 4), (7, 3), (3, 8), (0, 2)] {
            let cuts = shard_cuts(num_users, shards);
            assert_eq!(cuts.len(), shards + 1);
            assert_eq!(cuts[0], 0);
            assert_eq!(*cuts.last().unwrap(), num_users);
            assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
            // Balanced: ranges differ by at most one user.
            let sizes: Vec<u32> = cuts.windows(2).map(|w| w[1] - w[0]).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "{num_users} users / {shards} shards: {sizes:?}");
        }
    }

    #[test]
    fn shard_manifest_roundtrip() {
        let manifest = ShardManifest {
            num_users: 1000,
            cuts: shard_cuts(1000, 4),
            fingerprints: vec![1, u64::MAX, 0xdead_beef, 42],
        };
        assert_eq!(manifest.num_shards(), 4);
        let bytes = manifest.encode();
        assert_eq!(ShardManifest::decode(&bytes).unwrap(), manifest);
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(ShardManifest::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn shard_manifest_rejects_inconsistent_splits() {
        let bad = [
            // cuts/fingerprints length mismatch
            ShardManifest { num_users: 10, cuts: vec![0, 10], fingerprints: vec![1, 2] },
            // no shards at all
            ShardManifest { num_users: 10, cuts: vec![0], fingerprints: vec![] },
            // split does not start at 0
            ShardManifest { num_users: 10, cuts: vec![1, 10], fingerprints: vec![1] },
            // split does not end at num_users
            ShardManifest { num_users: 10, cuts: vec![0, 9], fingerprints: vec![1] },
            // non-monotone boundaries
            ShardManifest { num_users: 10, cuts: vec![0, 7, 4, 10], fingerprints: vec![1, 2, 3] },
        ];
        for manifest in bad {
            assert!(ShardManifest::decode(&manifest.encode()).is_err(), "{manifest:?}");
        }
    }

    #[test]
    fn il_csr_append_matches_monolithic_decode() {
        // Users 0..4 split [0,2) / [2,4): appending the two shard blocks
        // must reproduce the monolithic block exactly.
        let all: Vec<IlEntry> =
            vec![(0, vec![1, 4]), (1, vec![]), (2, vec![0, 2, 3]), (3, vec![5])];
        let mut whole = Vec::new();
        encode_il_entries(&all, Codec::Packed, &mut whole);
        let mut lo = Vec::new();
        encode_il_entries(&all[..2], Codec::Packed, &mut lo);
        let mut hi = Vec::new();
        encode_il_entries(&all[2..], Codec::Packed, &mut hi);

        let mut joined = decode_il_csr(&lo, Codec::Packed).unwrap();
        joined.append(&decode_il_csr(&hi, Codec::Packed).unwrap());
        assert_eq!(joined, decode_il_csr(&whole, Codec::Packed).unwrap());

        // Appending an empty shard block is a no-op.
        let before = joined.clone();
        let mut empty = Vec::new();
        encode_il_entries(&[], Codec::Packed, &mut empty);
        joined.append(&decode_il_csr(&empty, Codec::Packed).unwrap());
        assert_eq!(joined, before);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let entries: Vec<IlEntry> = vec![(1, vec![2])];
        let mut buf = Vec::new();
        encode_il_entries(&entries, Codec::Raw, &mut buf);
        buf.push(0xff);
        assert!(decode_il_entries(&buf, Codec::Raw).is_err());
    }
}
