//! Algorithm 4 — `QueryIRR`: incremental KB-TIM query processing.
//!
//! The IRR index sorts each keyword's inverted lists by length, so the
//! most impactful users come first. Queries run an NRA-style top-k
//! aggregation (after Fagin et al. \[8\]):
//!
//! * candidates live in a max-priority-queue keyed by an **upper bound**
//!   on their uncovered coverage count;
//! * a keyword's bound for users not yet seen is `kb[w]` — the longest
//!   inverted list in any unloaded partition (clamped to `θ^Q_w`, since a
//!   prefix count can never exceed the prefix);
//! * `IP_w` resolves "missing" partial scores: a user whose first RR-set
//!   occurrence is at or beyond `θ^Q_w` scores 0 on `w` without loading
//!   anything (§5.2's first issue);
//! * scores are refined **lazily**: only the queue's top entry is ever
//!   recomputed (§5.2's second issue); gains shrink monotonically, so a
//!   stale top that recomputes to the same value is safe to accept;
//! * a candidate becomes a seed when its score is exact (`COMPLETE`) and
//!   at least `Σ_w kb[w]`, the best any unseen user could do.
//!
//! Theorem 3: the seeds' coverage scores equal Algorithm 2's. The
//! implementation shares its tie-breaking (score desc, node id asc) with
//! the greedy used by `query_rr`, so the *seed sequences* are identical —
//! property-tested in `tests/`.

use crate::format::{self, IlCsr};
use crate::rr_query::empty_outcome;
use crate::scratch::{KwBufs, QueryScratch};
use crate::{IndexError, KbtimIndex, QueryCtx, QueryOutcome, QueryStats};
use kbtim_core::bitset::Bitset;
use kbtim_exec::ExecPool;
use kbtim_graph::NodeId;
use kbtim_topics::Query;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Sentinel for "no value" in the dense per-user tables below.
const ABSENT: u32 = u32::MAX;

/// Per-keyword NRA state.
///
/// Per-user lookups go through a *compact slot table*: `bufs.users` holds
/// the keyword's `IP_w` keys (every user occurring in at least one stored
/// RR set, ascending), and all per-slot arrays are sized by that
/// occupancy — not by |V| — so query memory scales with the keyword's
/// pool, exactly like the old hash maps, but flat: a slot is one
/// branch-free binary search away and loaded inverted lists live in one
/// append-only arena (each user's list arrives with exactly one
/// partition, so a `(start, len)` span per slot suffices). The tables
/// themselves ([`KwBufs`]) are leased from the index's scratch pool and
/// returned when the query finishes, so a warmed index rebuilds no
/// per-keyword allocation.
struct KwState<'a> {
    /// `θ^Q_w` — only RR ids below this participate.
    share: u64,
    /// Base offset of this keyword's ids in the global covered bitset.
    base: u64,
    /// How many partitions have been loaded.
    loaded: usize,
    /// Current unseen-user bound for this keyword.
    kb: u64,
    /// Pooled IP table, partition catalog, slot spans and list arena.
    bufs: KwBufs,
    source: &'a kbtim_storage::BlockSource,
}

impl KwState<'_> {
    /// Slot of `v`, if it occurs in this keyword's pool at all.
    #[inline]
    fn slot(&self, v: NodeId) -> Option<usize> {
        self.bufs.users.binary_search(&v).ok()
    }

    /// The loaded, truncated list of slot `s` (must be loaded).
    fn list_at(&self, s: usize) -> &[u32] {
        let start = self.bufs.list_start[s] as usize;
        &self.bufs.arena[start..start + self.bufs.list_len[s] as usize]
    }

    /// Exact uncovered count for a loaded list.
    ///
    /// The partition walk probes the covered bitset at data-dependent
    /// positions; a fixed look-ahead prefetch overlaps those misses (see
    /// [`kbtim_core::prefetch`]) without affecting the count.
    fn exact_count(&self, list: &[u32], covered: &Bitset) -> u64 {
        let mut count = 0u64;
        for (i, &id) in list.iter().enumerate() {
            if let Some(&ahead) = list.get(i + kbtim_core::prefetch::COVER_SCAN_AHEAD) {
                covered.prefetch((self.base + ahead as u64) as usize);
            }
            count += u64::from(!covered.get((self.base + id as u64) as usize));
        }
        count
    }

    /// Partial score of `v` on this keyword: `(bound, is_exact)`.
    fn partial(&self, v: NodeId, covered: &Bitset) -> (u64, bool) {
        // Never occurs → exact zero without loading anything.
        let Some(s) = self.slot(v) else { return (0, true) };
        if self.bufs.list_start[s] != ABSENT {
            return (self.exact_count(self.list_at(s), covered), true);
        }
        if (self.bufs.firsts[s] as u64) < self.share {
            (self.kb, false)
        } else {
            // First occurrence beyond the prefix → exact zero (§5.2).
            (0, true)
        }
    }
}

impl KbtimIndex {
    /// The IRR batch entry: answer `query` from a batch's shared
    /// [`crate::scratch::KeywordArena`]. Requires the IRR variant, like
    /// [`KbtimIndex::query_irr`].
    ///
    /// The NRA's whole advantage is loading *few* partitions from disk;
    /// inside a batch the planner has already decoded every query
    /// keyword's complete `L_w` once for the group, so incremental
    /// partition loading has nothing left to save and the top-k
    /// aggregation degenerates to exact greedy over the merged instance.
    /// This entry therefore runs the shared-arena merge + greedy
    /// directly — by Theorem 3 (strengthened to identical sequences by
    /// the shared tie-breaking, see the module docs) the seeds, marginal
    /// gains, coverage, and influence estimate are bit-identical to what
    /// the incremental NRA returns, which `tests/concurrent_equiv.rs`
    /// enforces against the serial [`KbtimIndex::query_irr`] oracle.
    /// Stats reflect batched serving: `rr_sets_loaded` is the θ^Q
    /// budget and `partitions_loaded` is 0 (no partition I/O happened —
    /// the batch decode was charged once, to the group).
    pub fn query_irr_prepared(
        &self,
        query: &Query,
        arena: &crate::scratch::KeywordArena,
    ) -> Result<QueryOutcome, IndexError> {
        let format::IndexVariant::Irr { .. } = self.meta().variant else {
            return Err(IndexError::NotAnIrrIndex);
        };
        self.query_rr_prepared(query, arena)
    }

    /// Answer `query` with Algorithm 4. Requires the IRR variant.
    pub fn query_irr(&self, query: &Query) -> Result<QueryOutcome, IndexError> {
        self.query_irr_ctx(query, &QueryCtx::default())
    }

    /// [`KbtimIndex::query_irr`] under an execution context: the
    /// deadline (if any) is checked once per NRA round, aborting with
    /// [`IndexError::DeadlineExceeded`] — never with partial seeds.
    /// The `engine.decode` failpoint fires before any partition load.
    pub fn query_irr_ctx(&self, query: &Query, ctx: &QueryCtx) -> Result<QueryOutcome, IndexError> {
        let format::IndexVariant::Irr { .. } = self.meta().variant else {
            return Err(IndexError::NotAnIrrIndex);
        };
        // Sharded serving lowers IRR to the scatter-gather merged-greedy
        // path, exactly as [`KbtimIndex::query_irr_prepared`] does for
        // batches: the NRA's advantage is loading few partitions from
        // *one* segment, while a sharded query fans per-shard decode out
        // across the pool anyway. By Theorem 3 (strengthened to
        // identical sequences by the shared tie-breaking) the seeds,
        // marginal gains, coverage, and influence estimate are
        // bit-identical to the incremental NRA; stats reflect the
        // scatter-gather execution (`rr_sets_loaded = θ^Q`,
        // `partitions_loaded = 0`), which `tests/shard_equiv.rs`
        // pins against the single-shard oracle.
        if self.num_shards() > 1 {
            return self.query_rr_ctx(query, ctx);
        }
        let started = Instant::now();
        let io_before = self.io_stats().snapshot();
        let (phi_q, budget) = self.query_budget(query);
        if budget.is_empty() {
            return Ok(empty_outcome(started));
        }
        if kbtim_fault::inject("engine.decode") {
            return Err(IndexError::Injected("engine.decode"));
        }
        let codec = self.meta().codec;

        // Every per-query table below leases from the scratch pool
        // (cleared or fully overwritten before use, so reuse cannot
        // affect the answer): the covered bitset, selected flags, the
        // per-keyword KwBufs, the candidate heap's backing store and the
        // fresh-candidate staging buffer.
        let num_users = self.meta().num_users as usize;
        let mut outer_scratch = self.scratch.guard();
        let QueryScratch { covered, selected, kw_bufs, nra_heap, nra_fresh, bytes_a, .. } =
            &mut *outer_scratch;

        // Initialize per-keyword state; IP and the partition catalog are
        // read up front (one small read each, as in the paper). Per-slot
        // tables are sized by the keyword's occupancy, never by |V|.
        let mut states: Vec<KwState<'_>> = Vec::with_capacity(budget.len());
        let mut base = 0u64;
        for &(topic, share) in &budget {
            let source = self.source(topic)?;
            let mut bufs = kw_bufs.pop().unwrap_or_default();
            bufs.clear();
            let ip_bytes = source.read_block_in(format::IP_BLOCK, bytes_a)?;
            format::decode_ip_into(ip_bytes, codec, &mut bufs.users, &mut bufs.firsts)?;
            debug_assert!(bufs.users.windows(2).all(|w| w[0] < w[1]), "IP_w users must ascend");
            let pmeta_bytes = source.read_block_in(format::PMETA_BLOCK, bytes_a)?;
            format::decode_partition_meta_into(pmeta_bytes, &mut bufs.partitions)?;
            let max_len = self.meta().keywords[topic as usize].max_list_len as u64;
            let slots = bufs.users.len();
            bufs.list_start.resize(slots, ABSENT);
            bufs.list_len.resize(slots, 0);
            states.push(KwState { share, base, loaded: 0, kb: max_len.min(share), bufs, source });
            base += share;
        }
        let theta_q = base;

        covered.reset(theta_q as usize);
        selected.clear();
        selected.resize(num_users, false);
        let covered: &mut Bitset = covered;
        let mut pq: BinaryHeap<(u64, Reverse<NodeId>)> = BinaryHeap::from(std::mem::take(nra_heap));
        let mut seeds: Vec<NodeId> = Vec::new();
        let mut marginal_gains: Vec<u64> = Vec::new();
        let mut coverage = 0u64;
        let mut rr_sets_loaded = 0u64;
        let mut partitions_loaded = 0u64;

        // Aggregate upper-bound score of a candidate.
        let score = |v: NodeId, covered: &Bitset, states: &[KwState<'_>]| -> (u64, bool) {
            let mut total = 0u64;
            let mut complete = true;
            for st in states {
                let (s, exact) = st.partial(v, covered);
                total += s;
                complete &= exact;
            }
            (total, complete)
        };

        // Load the next partition of every query keyword — reads and
        // decodes fan out one shard per keyword on the pool, then results
        // apply to the NRA state in keyword order (deterministic for any
        // thread count). Pushes fresh candidates; returns false when
        // everything is exhausted.
        let pool = self.pool();
        let load_more = |states: &mut [KwState<'_>],
                         pq: &mut BinaryHeap<(u64, Reverse<NodeId>)>,
                         covered: &Bitset,
                         selected: &[bool],
                         fresh: &mut Vec<NodeId>,
                         rr_sets_loaded: &mut u64,
                         partitions_loaded: &mut u64|
         -> Result<bool, IndexError> {
            // Fan out only when this round moves enough bytes to dwarf the
            // pool's fork/join cost; small rounds (the common case for
            // tight partitions) read inline. The partition catalog gives
            // the sizes before any I/O, and both paths produce identical
            // loads, so the choice cannot affect the answer.
            const PARALLEL_LOAD_MIN_BYTES: u64 = 256 * 1024;
            let pending_bytes: u64 = states
                .iter()
                .filter(|st| st.loaded < st.bufs.partitions.len())
                .map(|st| {
                    let part = &st.bufs.partitions[st.loaded];
                    (part.il_end - part.il_start) + part.ir_prefix_len(st.share)
                })
                .sum();
            let seq = ExecPool::sequential();
            let round_pool = if pending_bytes < PARALLEL_LOAD_MIN_BYTES { &seq } else { pool };

            // Decoded partition of one keyword: inverted lists in CSR
            // form (already truncated to the share) and the loaded RR-set
            // count.
            type PartitionLoad = Option<(IlCsr, u64, u64)>;
            let loads: Vec<Result<PartitionLoad, IndexError>> = round_pool.map_shards_with(
                states.len(),
                || self.scratch.guard(),
                |guard, i| {
                    let s: &mut QueryScratch = &mut *guard;
                    let st = &states[i];
                    if st.loaded >= st.bufs.partitions.len() {
                        return Ok(None);
                    }
                    let part = st.bufs.partitions[st.loaded].clone();
                    let il = st.source.read_range_in(
                        format::ILP_BLOCK,
                        part.il_start,
                        part.il_end - part.il_start,
                        &mut s.bytes_a,
                    )?;
                    format::decode_il_csr_into(il, codec, &mut s.il)?;
                    let full = &s.il;
                    // Only the byte range holding ids < θ^Q_w is read —
                    // sets beyond the query's prefix never touch memory
                    // (the sparse ir_samples table bounds the range).
                    let ir_len = part.ir_prefix_len(st.share);
                    let ir = st.source.read_range_in(
                        format::IRP_BLOCK,
                        part.ir_start,
                        ir_len,
                        &mut s.bytes_b,
                    )?;
                    // RR-set payloads are decoded (and counted) exactly as
                    // the paper's loader does; the lazy NRA only needs ids,
                    // so the members decode into one reused scratch buffer.
                    s.ir_members.clear();
                    let ir_count =
                        format::count_ir_entries(ir, codec, st.share as u32, &mut s.ir_members)?;
                    // Truncate each list to the share, still CSR, into a
                    // pooled output (returned to the pool after apply).
                    let mut truncated = self.scratch.take_csr();
                    for j in 0..full.len() {
                        let list = full.list(j);
                        let cut = list.partition_point(|&id| (id as u64) < st.share);
                        truncated.ids.extend_from_slice(&list[..cut]);
                        truncated.close_list(full.users[j]);
                    }
                    let new_kb = (part.max_len_after as u64).min(st.share);
                    Ok(Some((truncated, ir_count, new_kb)))
                },
            );

            let mut any = false;
            fresh.clear();
            for (st, load) in states.iter_mut().zip(loads) {
                let Some((truncated, ir_count, new_kb)) = load? else {
                    st.kb = 0;
                    continue;
                };
                *rr_sets_loaded += ir_count;
                *partitions_loaded += 1;
                for j in 0..truncated.len() {
                    let user = truncated.users[j];
                    let list = truncated.list(j);
                    let start = st.bufs.arena.len();
                    assert!(start < ABSENT as usize, "IRR list arena exceeds u32 spans");
                    // Every partitioned user has a first occurrence, so a
                    // slot always exists.
                    let s = st.slot(user).expect("partition user missing from IP_w");
                    st.bufs.list_start[s] = start as u32;
                    st.bufs.list_len[s] = list.len() as u32;
                    st.bufs.arena.extend_from_slice(list);
                    if !selected[user as usize] {
                        fresh.push(user);
                    }
                }
                st.loaded += 1;
                st.kb = new_kb;
                any = true;
                self.scratch.put_csr(truncated);
            }
            // Push fresh candidates with bounds computed against the *new*
            // kb values.
            for &v in fresh.iter() {
                let mut total = 0u64;
                for st in states.iter() {
                    total += st.partial(v, covered).0;
                }
                pq.push((total, Reverse(v)));
            }
            Ok(any)
        };

        // Deadline expiry breaks (not returns) so the leased tables
        // below still go back to the scratch pool before erroring.
        let mut deadline_hit = false;
        while (seeds.len() as u32) < query.k() {
            if ctx.expired() {
                deadline_hit = true;
                break;
            }
            let total_kb: u64 = states.iter().map(|st| st.kb).sum();
            match pq.peek().copied() {
                Some((s, Reverse(v))) if s > 0 => {
                    pq.pop();
                    if selected[v as usize] {
                        continue;
                    }
                    let (s2, complete) = score(v, covered, &states);
                    if s2 != s {
                        // Stale: refresh and reinsert (lazy update, §5.2).
                        if s2 > 0 {
                            pq.push((s2, Reverse(v)));
                        }
                        continue;
                    }
                    if complete && s >= total_kb {
                        // New seed confirmed.
                        selected[v as usize] = true;
                        seeds.push(v);
                        marginal_gains.push(s);
                        coverage += s;
                        for st in &states {
                            if let Some(s) = st.slot(v) {
                                if st.bufs.list_start[s] != ABSENT {
                                    for &id in st.list_at(s) {
                                        covered.set((st.base + id as u64) as usize);
                                    }
                                }
                            }
                        }
                    } else {
                        // Cannot separate from unseen users yet: reinsert
                        // and deepen the index scan.
                        pq.push((s, Reverse(v)));
                        if !load_more(
                            &mut states,
                            &mut pq,
                            covered,
                            selected,
                            nra_fresh,
                            &mut rr_sets_loaded,
                            &mut partitions_loaded,
                        )? && total_kb == 0
                        {
                            // Exhausted and still not separable — only
                            // possible transiently; with kb = 0 the accept
                            // condition holds on the next iteration for any
                            // complete candidate. Guard against an
                            // incomplete candidate surviving exhaustion
                            // (cannot happen: exhaustion loads every list).
                            debug_assert!(complete, "incomplete candidate after exhaustion");
                        }
                    }
                }
                _ => {
                    // No positive candidate in the queue: either deepen the
                    // scan or finish.
                    if total_kb == 0
                        || !load_more(
                            &mut states,
                            &mut pq,
                            covered,
                            selected,
                            nra_fresh,
                            &mut rr_sets_loaded,
                            &mut partitions_loaded,
                        )?
                    {
                        break;
                    }
                }
            }
        }

        // Return the leased tables for the next query: the keyword
        // tables (emptied, capacities kept) and the heap's backing store.
        for st in states {
            let mut bufs = st.bufs;
            bufs.clear();
            kw_bufs.push(bufs);
        }
        let mut heap_store = pq.into_vec();
        heap_store.clear();
        *nra_heap = heap_store;
        if deadline_hit {
            return Err(IndexError::DeadlineExceeded);
        }

        let estimated_influence =
            if theta_q == 0 { 0.0 } else { coverage as f64 / theta_q as f64 * phi_q };
        Ok(QueryOutcome {
            seeds,
            marginal_gains,
            coverage,
            estimated_influence,
            stats: QueryStats {
                theta_q,
                rr_sets_loaded,
                partitions_loaded,
                io: self.io_stats().snapshot().since(&io_before),
                elapsed: started.elapsed(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::build::{IndexBuildConfig, IndexBuilder, ThetaMode};
    use crate::format::IndexVariant;
    use crate::{IndexError, KbtimIndex};
    use kbtim_codec::Codec;
    use kbtim_core::theta::SamplingConfig;
    use kbtim_datagen::{Dataset, DatasetConfig, DatasetFamily};
    use kbtim_propagation::model::IcModel;
    use kbtim_storage::{IoStats, TempDir};
    use kbtim_topics::Query;

    fn dataset(users: u32, topics: u32, seed: u64) -> Dataset {
        DatasetConfig::family(DatasetFamily::News)
            .num_users(users)
            .num_topics(topics)
            .seed(seed)
            .build()
    }

    fn build_irr(data: &Dataset, dir: &std::path::Path, partition_size: u32) {
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(2000),
                opt_initial_samples: 128,
                opt_max_rounds: 8,
                ..SamplingConfig::fast()
            },
            codec: Codec::Packed,
            theta_mode: ThetaMode::Compact,
            variant: IndexVariant::Irr { partition_size },
            threads: 4,
            seed: 13,
            shards: 1,
        };
        IndexBuilder::new(&model, &data.profiles, config).build(dir).unwrap();
    }

    #[test]
    fn irr_matches_rr_seeds_exactly() {
        // Theorem 3, strengthened to identical sequences by shared
        // tie-breaking.
        let data = dataset(500, 6, 31);
        let dir = TempDir::new("irrq-eq").unwrap();
        build_irr(&data, dir.path(), 16);
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        for q in [
            Query::new([0], 5),
            Query::new([0, 1], 10),
            Query::new([1, 2, 3], 15),
            Query::new([0, 1, 2, 3, 4, 5], 25),
        ] {
            let rr = index.query_rr(&q).unwrap();
            let irr = index.query_irr(&q).unwrap();
            assert_eq!(rr.seeds, irr.seeds, "query {q:?}");
            assert_eq!(rr.marginal_gains, irr.marginal_gains, "query {q:?}");
            assert_eq!(rr.coverage, irr.coverage);
            assert_eq!(rr.stats.theta_q, irr.stats.theta_q);
        }
    }

    #[test]
    fn irr_loads_fewer_rr_sets_with_small_k() {
        let data = dataset(1200, 6, 37);
        let dir = TempDir::new("irrq-fewer").unwrap();
        build_irr(&data, dir.path(), 25);
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let q = Query::new([0, 1], 5);
        let rr = index.query_rr(&q).unwrap();
        let irr = index.query_irr(&q).unwrap();
        assert!(
            irr.stats.rr_sets_loaded < rr.stats.rr_sets_loaded,
            "IRR {} should load fewer sets than RR {}",
            irr.stats.rr_sets_loaded,
            rr.stats.rr_sets_loaded
        );
        assert!(irr.stats.partitions_loaded > 0);
    }

    #[test]
    fn rr_variant_rejects_irr_queries() {
        let data = dataset(300, 4, 41);
        let model = IcModel::weighted_cascade(&data.graph);
        let dir = TempDir::new("irrq-notirr").unwrap();
        let config = IndexBuildConfig {
            variant: IndexVariant::Rr,
            sampling: SamplingConfig {
                theta_cap: Some(500),
                opt_initial_samples: 64,
                opt_max_rounds: 4,
                ..SamplingConfig::fast()
            },
            ..IndexBuildConfig::default()
        };
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        assert!(matches!(
            index.query_irr(&Query::new([0], 3)).unwrap_err(),
            IndexError::NotAnIrrIndex
        ));
    }

    #[test]
    fn partition_size_one_still_correct() {
        let data = dataset(250, 4, 43);
        let dir = TempDir::new("irrq-p1").unwrap();
        build_irr(&data, dir.path(), 1);
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let q = Query::new([0, 1], 8);
        let rr = index.query_rr(&q).unwrap();
        let irr = index.query_irr(&q).unwrap();
        assert_eq!(rr.seeds, irr.seeds);
    }

    #[test]
    fn huge_partition_size_still_correct() {
        // One partition holding everything degenerates IRR to RR.
        let data = dataset(250, 4, 47);
        let dir = TempDir::new("irrq-phuge").unwrap();
        build_irr(&data, dir.path(), 1_000_000);
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let q = Query::new([0, 1, 2], 8);
        let rr = index.query_rr(&q).unwrap();
        let irr = index.query_irr(&q).unwrap();
        assert_eq!(rr.seeds, irr.seeds);
        assert_eq!(irr.stats.partitions_loaded, q.num_topics() as u64);
    }

    #[test]
    fn query_auto_picks_by_k() {
        let data = dataset(400, 4, 59);
        let dir = TempDir::new("irrq-auto").unwrap();
        build_irr(&data, dir.path(), 40); // δ = 40 → IRR for k ≤ 10
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let small = index.query_auto(&Query::new([0, 1], 5)).unwrap();
        let large = index.query_auto(&Query::new([0, 1], 30)).unwrap();
        // IRR path leaves partition traces; RR path does not.
        assert!(small.stats.partitions_loaded > 0, "small k should take IRR");
        assert_eq!(large.stats.partitions_loaded, 0, "large k should take RR");
        // Both remain Theorem-3-identical to the explicit calls.
        assert_eq!(small.seeds, index.query_irr(&Query::new([0, 1], 5)).unwrap().seeds);
        assert_eq!(large.seeds, index.query_rr(&Query::new([0, 1], 30)).unwrap().seeds);
    }

    #[test]
    fn query_auto_on_rr_variant_never_uses_irr() {
        let data = dataset(300, 4, 67);
        let model = IcModel::weighted_cascade(&data.graph);
        let dir = TempDir::new("irrq-auto-rr").unwrap();
        let config = IndexBuildConfig {
            variant: IndexVariant::Rr,
            sampling: SamplingConfig {
                theta_cap: Some(500),
                opt_initial_samples: 64,
                opt_max_rounds: 4,
                ..SamplingConfig::fast()
            },
            ..IndexBuildConfig::default()
        };
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let outcome = index.query_auto(&Query::new([0], 2)).unwrap();
        assert_eq!(outcome.stats.partitions_loaded, 0);
    }

    #[test]
    fn io_counted_per_query() {
        let data = dataset(400, 4, 53);
        let dir = TempDir::new("irrq-io").unwrap();
        build_irr(&data, dir.path(), 10);
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let q = Query::new([0, 1], 6);
        let first = index.query_irr(&q).unwrap();
        let second = index.query_irr(&q).unwrap();
        // Stats are per query (deltas), not cumulative.
        assert_eq!(first.stats.io.read_ops, second.stats.io.read_ops);
        assert!(first.stats.io.read_ops > 0);
    }
}
