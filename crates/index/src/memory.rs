//! Fully in-memory serving copy of an index.
//!
//! The paper's indexes are disk-resident because their θ_w pools (tens of
//! GB) exceed RAM. Scaled deployments — and latency-critical serving
//! tiers in front of the disk index — fit comfortably in memory, where
//! Algorithm 2 runs with zero I/O. [`MemoryIndex::load`] decodes every
//! per-keyword block of an opened [`KbtimIndex`] once (checksum-verified)
//! and answers queries from RAM from then on; results are bit-identical
//! to [`KbtimIndex::query_rr`] because both share the budget computation
//! and the greedy implementation.
//!
//! Loading goes through the index's [`kbtim_storage::BlockSource`], so on
//! the resident/mmap backends the block bytes are *borrowed views of the
//! already-resident segment pages* — the decode writes straight from
//! shared pages into the CSR arenas with no intermediate copy of the
//! compressed block, and mmap pages stay shared with the disk index and
//! the kernel cache. Query-time allocations (the merged inverted index)
//! recycle through a scratch pool, as in the disk paths.

use crate::format::{self, IlCsr};
use crate::scratch::ScratchPool;
use crate::{IndexError, IndexMeta, KbtimIndex, QueryOutcome, QueryStats};
use kbtim_core::invindex::InvertedIndexBuilder;
use kbtim_core::maxcover::greedy_max_cover_inverted;
use kbtim_topics::Query;
use std::time::Instant;

/// One keyword's resident pool.
struct MemKeyword {
    /// Inverted lists in flat CSR form: users ascending, rr ids ascending
    /// within each user's slice of the shared arena.
    il: IlCsr,
}

/// RAM-resident index answering KB-TIM queries without I/O.
pub struct MemoryIndex {
    meta: IndexMeta,
    keywords: Vec<Option<MemKeyword>>,
    /// Recycled merged-index arenas (see [`crate::scratch`]).
    scratch: ScratchPool,
}

impl MemoryIndex {
    /// Load every keyword of `index` into memory. For a sharded index
    /// the per-shard inverted lists concatenate in shard order — users
    /// are range-partitioned and keep their global-build rr-id lists, so
    /// the resident CSR is identical to a single-shard load.
    pub fn load(index: &KbtimIndex) -> Result<MemoryIndex, IndexError> {
        let meta = index.meta().clone();
        let codec = meta.codec;
        let num_shards = index.num_shards();
        let mut keywords = Vec::with_capacity(meta.keywords.len());
        for kw in &meta.keywords {
            if kw.theta == 0 {
                keywords.push(None);
                continue;
            }
            // Decode straight into the CSR arena — the resident form *is*
            // the serving form, no per-user Vec headers; on zero-copy
            // backends `il_bytes` borrows the shared segment pages.
            let mut il = IlCsr::default();
            for shard in 0..num_shards {
                let source = index.source_in(shard, kw.topic)?;
                let il_bytes = source.read_block(format::IL_BLOCK)?;
                if shard == 0 {
                    il = format::decode_il_csr(&il_bytes, codec)?;
                } else {
                    il.append(&format::decode_il_csr(&il_bytes, codec)?);
                }
            }
            keywords.push(Some(MemKeyword { il }));
        }
        Ok(MemoryIndex { meta, keywords, scratch: ScratchPool::new() })
    }

    /// The catalog this index was loaded from.
    pub fn meta(&self) -> &IndexMeta {
        &self.meta
    }

    /// Exact resident footprint of the inverted-list arenas in bytes:
    /// `ids.len()·4 + offsets.len()·4 + users.len()·4` per keyword — the
    /// true allocation of the CSR, not a per-entry estimate, so capacity
    /// planning numbers are honest.
    pub fn resident_bytes(&self) -> u64 {
        self.keywords.iter().flatten().map(|kw| kw.il.arena_bytes()).sum()
    }

    /// Answer a query with Algorithm 2 semantics, entirely from RAM.
    ///
    /// `stats.io` stays zero and `rr_sets_loaded` reports the θ^Q budget
    /// the query *would* have read from disk, for comparability.
    pub fn query(&self, query: &Query) -> QueryOutcome {
        let started = Instant::now();
        let (phi_q, budget) = query_budget_from_meta(&self.meta, query);
        if budget.is_empty() {
            return QueryOutcome {
                seeds: Vec::new(),
                marginal_gains: Vec::new(),
                coverage: 0,
                estimated_influence: 0.0,
                stats: QueryStats { elapsed: started.elapsed(), ..QueryStats::default() },
            };
        }

        // Two flat passes over the resident CSRs: count each user's
        // truncated contribution, then fill the dense merged instance.
        // Keyword order makes per-user global ids ascend, as in the disk
        // path. Arenas recycle from the previous query via the pool.
        let mut builder =
            InvertedIndexBuilder::recycled(self.meta.num_users, self.scratch.take_arenas());
        let mut theta_q = 0u64;
        for &(topic, share) in &budget {
            let kw = self.keywords[topic as usize].as_ref().expect("budgeted keyword loaded");
            for j in 0..kw.il.len() {
                let cut = kw.il.list(j).partition_point(|&id| (id as u64) < share);
                builder.count(kw.il.users[j], cut as u32);
            }
            theta_q += share;
        }
        let mut filler = builder.fill();
        let mut base = 0u64;
        for &(topic, share) in &budget {
            let kw = self.keywords[topic as usize].as_ref().expect("budgeted keyword loaded");
            for j in 0..kw.il.len() {
                let list = kw.il.list(j);
                let cut = list.partition_point(|&id| (id as u64) < share);
                filler.push_list(
                    kw.il.users[j],
                    list[..cut].iter().map(|&id| (base + id as u64) as u32),
                );
            }
            base += share;
        }
        debug_assert_eq!(base, theta_q);
        let inverted = filler.finish();
        let cover = greedy_max_cover_inverted(&inverted, theta_q, query.k());
        self.scratch.put_arenas(inverted.into_arenas());
        let estimated_influence =
            if theta_q == 0 { 0.0 } else { cover.covered as f64 / theta_q as f64 * phi_q };
        QueryOutcome {
            seeds: cover.seeds,
            marginal_gains: cover.marginal_gains,
            coverage: cover.covered,
            estimated_influence,
            stats: QueryStats {
                theta_q,
                rr_sets_loaded: theta_q,
                partitions_loaded: 0,
                io: Default::default(),
                elapsed: started.elapsed(),
            },
        }
    }
}

/// The Eqn-11 budget computed from a catalog alone (shared with
/// [`KbtimIndex::query_budget`], which delegates here).
pub(crate) fn query_budget_from_meta(meta: &IndexMeta, query: &Query) -> (f64, Vec<(u32, u64)>) {
    let masses: Vec<(u32, f64)> = query
        .topics()
        .iter()
        .filter_map(|&w| {
            let kw = meta.keywords.get(w as usize)?;
            let mass = kw.tf_sum * kw.idf;
            (kw.theta > 0 && mass > 0.0).then_some((w, mass))
        })
        .collect();
    let phi_q: f64 = masses.iter().map(|&(_, m)| m).sum();
    if phi_q <= 0.0 {
        return (0.0, Vec::new());
    }
    let theta_q = masses
        .iter()
        .map(|&(w, mass)| {
            let p_w = mass / phi_q;
            meta.keywords[w as usize].theta as f64 / p_w
        })
        .fold(f64::INFINITY, f64::min);
    let budget = masses
        .iter()
        .map(|&(w, mass)| {
            let p_w = mass / phi_q;
            let share =
                ((theta_q * p_w).floor() as u64).min(meta.keywords[w as usize].theta).max(1);
            (w, share)
        })
        .collect();
    (phi_q, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{IndexBuildConfig, IndexBuilder};
    use crate::format::IndexVariant;
    use kbtim_core::theta::SamplingConfig;
    use kbtim_datagen::{DatasetConfig, DatasetFamily};
    use kbtim_propagation::model::IcModel;
    use kbtim_storage::{IoStats, TempDir};

    fn build_index(dir: &std::path::Path) -> kbtim_datagen::Dataset {
        let data = DatasetConfig::family(DatasetFamily::News)
            .num_users(500)
            .num_topics(6)
            .seed(71)
            .build();
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(1_500),
                opt_initial_samples: 64,
                opt_max_rounds: 5,
                ..SamplingConfig::fast()
            },
            variant: IndexVariant::Irr { partition_size: 25 },
            ..IndexBuildConfig::default()
        };
        IndexBuilder::new(&model, &data.profiles, config).build(dir).unwrap();
        data
    }

    #[test]
    fn memory_matches_disk_exactly() {
        let dir = TempDir::new("mem-idx").unwrap();
        build_index(dir.path());
        let disk = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let mem = MemoryIndex::load(&disk).unwrap();
        for q in [Query::new([0], 5), Query::new([0, 1, 2], 12), Query::new([3, 4, 5], 20)] {
            let a = disk.query_rr(&q).unwrap();
            let b = mem.query(&q);
            assert_eq!(a.seeds, b.seeds, "query {q:?}");
            assert_eq!(a.coverage, b.coverage);
            assert_eq!(a.stats.theta_q, b.stats.theta_q);
            assert!((a.estimated_influence - b.estimated_influence).abs() < 1e-9);
        }
    }

    #[test]
    fn memory_query_does_zero_io() {
        let dir = TempDir::new("mem-io").unwrap();
        build_index(dir.path());
        let stats = IoStats::new();
        let disk = KbtimIndex::open(dir.path(), stats.clone()).unwrap();
        let mem = MemoryIndex::load(&disk).unwrap();
        stats.reset();
        let outcome = mem.query(&Query::new([0, 1], 8));
        assert_eq!(stats.read_ops(), 0, "RAM queries must not touch disk");
        assert_eq!(outcome.stats.io.read_ops, 0);
        assert!(!outcome.seeds.is_empty());
    }

    #[test]
    fn resident_bytes_reported() {
        let dir = TempDir::new("mem-bytes").unwrap();
        build_index(dir.path());
        let disk = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let mem = MemoryIndex::load(&disk).unwrap();
        assert!(mem.resident_bytes() > 0);
        assert_eq!(mem.meta().num_users, 500);
    }

    #[test]
    fn resident_bytes_is_exact_arena_footprint() {
        // Recompute the CSR footprint independently from the per-entry
        // decoder: ids + offsets (entries + 1) + users, 4 bytes each.
        let dir = TempDir::new("mem-exact-bytes").unwrap();
        build_index(dir.path());
        let disk = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let mem = MemoryIndex::load(&disk).unwrap();
        let mut expected = 0u64;
        for kw in &disk.meta().keywords {
            if kw.theta == 0 {
                continue;
            }
            let source = disk.source(kw.topic).unwrap();
            let il_bytes = source.read_block(format::IL_BLOCK).unwrap();
            let entries = format::decode_il_entries(&il_bytes, disk.meta().codec).unwrap();
            let ids: usize = entries.iter().map(|(_, l)| l.len()).sum();
            expected += 4 * (ids as u64 + entries.len() as u64 + 1 + entries.len() as u64);
        }
        assert_eq!(mem.resident_bytes(), expected);
    }

    #[test]
    fn unheld_topic_is_empty() {
        let dir = TempDir::new("mem-empty").unwrap();
        let data = build_index(dir.path());
        let disk = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let mem = MemoryIndex::load(&disk).unwrap();
        // A topic beyond the space → empty result, no panic.
        let outcome = mem.query(&Query::new([data.profiles.num_topics() + 5], 3));
        assert!(outcome.seeds.is_empty());
    }
}
