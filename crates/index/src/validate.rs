//! Structural validation of an on-disk index.
//!
//! [`KbtimIndex::validate`] re-reads every block (checksum-verified) and
//! cross-checks the invariants the query algorithms rely on. It is the
//! "fsck" of the index: run it after copying indexes between machines or
//! when debugging a suspected corruption that the per-block CRCs cannot
//! see (e.g. a truncated catalog pointing at a stale segment).
//!
//! For a sharded index every shard's segments are audited against that
//! shard's own `index.meta` rows (shard-local sizes, members confined to
//! the shard's `[lo, hi)` user range, RR sets allowed to be empty when
//! the shard owns none of their members), the per-shard catalogs are
//! cross-checked against the global one (identical θ_w/tf·idf/OPT rows;
//! member totals summing and list-length maxima folding back to the
//! global row), and the `shards.manifest` fingerprints are recomputed
//! from the segment bytes on disk.

use crate::{build, format};
use crate::{IndexError, KbtimIndex};
use kbtim_storage::segment::SegmentReader;
use kbtim_storage::IoStats;
use std::collections::HashMap;

/// Summary of a successful validation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Keyword segments with θ_w > 0, counted once per shard.
    pub keywords_checked: u32,
    /// Total RR sets decoded and verified (a set split across S shards
    /// counts once per shard holding a non-empty slice of it).
    pub rr_sets_checked: u64,
    /// Total inverted-list entries verified.
    pub il_entries_checked: u64,
    /// Total IRR partitions verified (0 for the RR variant).
    pub partitions_checked: u64,
    /// Shards audited (1 for the legacy flat layout).
    pub shards_checked: u32,
}

impl KbtimIndex {
    /// Verify every structural invariant of the index. Returns a summary
    /// on success; the first violated invariant aborts with
    /// [`IndexError::Corrupt`].
    pub fn validate(&self) -> Result<ValidationReport, IndexError> {
        let corrupt = |msg: String| IndexError::Corrupt(msg);
        let global = self.meta();
        let codec = global.codec;
        let sharded = self.num_shards() > 1;
        let mut report = ValidationReport::default();

        // --- per-shard catalogs + manifest (sharded layout only) --------
        // Collect the expectation rows each shard's segments are judged
        // against: the shard's own catalog when sharded, the global one
        // for the flat layout.
        let shard_rows: Vec<Vec<format::KeywordMeta>> = if sharded {
            let open_stats = IoStats::new(); // audit I/O is not query I/O
            let manifest_reader = SegmentReader::open(
                self.dir().join(format::SHARD_MANIFEST_FILE),
                open_stats.clone(),
            )?;
            let manifest = format::ShardManifest::decode(
                &manifest_reader.read_block(format::SHARD_MANIFEST_BLOCK)?,
            )?;
            if manifest.num_shards() != self.num_shards() {
                return Err(corrupt(format!(
                    "manifest lists {} shards, index opened {}",
                    manifest.num_shards(),
                    self.num_shards()
                )));
            }
            let mut rows = Vec::with_capacity(self.num_shards());
            for s in 0..self.num_shards() {
                let shard_dir = self.dir().join(format::shard_dir_name(s));
                let reader =
                    SegmentReader::open(shard_dir.join(format::META_FILE), open_stats.clone())?;
                let meta = format::IndexMeta::decode(&reader.read_block(format::META_BLOCK)?)?;
                if meta.num_users != global.num_users
                    || meta.num_topics != global.num_topics
                    || meta.codec != global.codec
                    || meta.variant != global.variant
                    || meta.keywords.len() != global.keywords.len()
                {
                    return Err(corrupt(format!(
                        "shard {s}: catalog header disagrees with the global catalog"
                    )));
                }
                // Shard rows carry the *global* per-keyword statistics
                // (θ_w and the tf·idf mass feed Eqn 11 identically on
                // every shard) next to shard-local segment sizes.
                for (row, grow) in meta.keywords.iter().zip(&global.keywords) {
                    if row.topic != grow.topic
                        || row.theta != grow.theta
                        || row.tf_sum != grow.tf_sum
                        || row.idf != grow.idf
                        || row.opt_w != grow.opt_w
                    {
                        return Err(corrupt(format!(
                            "shard {s}: keyword {} row disagrees with the global catalog",
                            grow.topic
                        )));
                    }
                }
                // Recompute the manifest fingerprint from the bytes on
                // disk — the same (topic, segment-content FNV) fold the
                // builder wrote, so a swapped or reflushed segment that
                // still parses is caught here.
                let mut fp = build::FNV_OFFSET;
                for row in &meta.keywords {
                    let content_fp = if row.theta == 0 {
                        0
                    } else {
                        let path = shard_dir.join(format::keyword_file_name(row.topic));
                        let content = std::fs::read(path)
                            .map_err(kbtim_storage::segment::StorageError::Io)?;
                        build::fnv1a(&content, build::FNV_OFFSET)
                    };
                    fp = build::fnv1a(&row.topic.to_le_bytes(), fp);
                    fp = build::fnv1a(&content_fp.to_le_bytes(), fp);
                }
                if fp != manifest.fingerprints[s] {
                    return Err(corrupt(format!(
                        "shard {s}: segment content does not match the manifest fingerprint"
                    )));
                }
                rows.push(meta.keywords);
            }
            // The shard-local sizes must fold back to the global row:
            // member counts partition across shards, the longest list
            // lives in some shard.
            for (w, grow) in global.keywords.iter().enumerate() {
                let members: u64 = rows.iter().map(|r| r[w].total_rr_members).sum();
                if members != grow.total_rr_members {
                    return Err(corrupt(format!(
                        "topic {}: shards hold {members} members, catalog says {}",
                        grow.topic, grow.total_rr_members
                    )));
                }
                let max_len = rows.iter().map(|r| r[w].max_list_len).max().unwrap_or(0);
                if max_len != grow.max_list_len {
                    return Err(corrupt(format!(
                        "topic {}: shard max list len {max_len}, catalog says {}",
                        grow.topic, grow.max_list_len
                    )));
                }
            }
            rows
        } else {
            vec![global.keywords.clone()]
        };

        // --- per-segment structural checks ------------------------------
        for (shard_idx, shard) in self.shards().iter().enumerate() {
            let (lo, hi) = (shard.lo, shard.hi);
            report.shards_checked += 1;
            for kw in &shard_rows[shard_idx] {
                if kw.theta == 0 {
                    continue;
                }
                let topic = kw.topic;
                let at = if sharded {
                    format!("shard {shard_idx} topic {topic}")
                } else {
                    format!("topic {topic}")
                };
                let reader = self.source_in(shard_idx, topic)?;
                report.keywords_checked += 1;

                // --- rr + rr_off --------------------------------------
                let off_bytes = reader.read_block(format::RR_OFF_BLOCK)?;
                if off_bytes.len() as u64 != (kw.theta + 1) * 8 {
                    return Err(corrupt(format!(
                        "{at}: offset table has {} bytes for theta {}",
                        off_bytes.len(),
                        kw.theta
                    )));
                }
                let offsets: Vec<u64> = off_bytes
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("chunked")))
                    .collect();
                if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
                    return Err(corrupt(format!("{at}: offsets not monotone from 0")));
                }
                let rr_bytes = reader.read_block(format::RR_BLOCK)?;
                if *offsets.last().expect("non-empty") != rr_bytes.len() as u64 {
                    return Err(corrupt(format!("{at}: offsets do not span the rr block")));
                }
                let sets = format::decode_rr_prefix(&rr_bytes, kw.theta, codec)?;
                let mut members_total = 0u64;
                for (i, set) in sets.iter().enumerate() {
                    if set.is_empty() {
                        if sharded {
                            continue; // this shard owns none of set i's members
                        }
                        return Err(corrupt(format!("{at}: rr set {i} is empty")));
                    }
                    if set.windows(2).any(|w| w[0] >= w[1]) {
                        return Err(corrupt(format!("{at}: rr set {i} not sorted/unique")));
                    }
                    if *set.first().expect("non-empty") < lo
                        || *set.last().expect("non-empty") >= hi
                    {
                        return Err(corrupt(format!(
                            "{at}: rr set {i} has a node outside [{lo}, {hi})"
                        )));
                    }
                    members_total += set.len() as u64;
                }
                if members_total != kw.total_rr_members {
                    return Err(corrupt(format!(
                        "{at}: catalog says {} members, segment has {members_total}",
                        kw.total_rr_members
                    )));
                }
                report.rr_sets_checked += sets.iter().filter(|s| !s.is_empty()).count() as u64;

                // --- il: exact inverse of the rr sets -----------------
                let il_bytes = reader.read_block(format::IL_BLOCK)?;
                let entries = format::decode_il_entries(&il_bytes, codec)?;
                let mut expected: HashMap<u32, Vec<u32>> = HashMap::new();
                for (id, set) in sets.iter().enumerate() {
                    for &node in set {
                        expected.entry(node).or_default().push(id as u32);
                    }
                }
                if entries.len() != expected.len() {
                    return Err(corrupt(format!(
                        "{at}: il has {} entries, expected {}",
                        entries.len(),
                        expected.len()
                    )));
                }
                let mut max_len = 0u32;
                for (user, list) in &entries {
                    let want = expected
                        .get(user)
                        .ok_or_else(|| corrupt(format!("{at}: il user {user} unknown")))?;
                    if want != list {
                        return Err(corrupt(format!("{at}: il mismatch for user {user}")));
                    }
                    max_len = max_len.max(list.len() as u32);
                }
                if max_len != kw.max_list_len {
                    return Err(corrupt(format!(
                        "{at}: catalog max list len {} vs actual {max_len}",
                        kw.max_list_len
                    )));
                }
                report.il_entries_checked += entries.len() as u64;

                // --- IRR blocks ---------------------------------------
                if let format::IndexVariant::Irr { partition_size } = self.meta().variant {
                    let ip_bytes = reader.read_block(format::IP_BLOCK)?;
                    let (users, firsts) = format::decode_ip(&ip_bytes, codec)?;
                    if users.len() != entries.len() {
                        return Err(corrupt(format!("{at}: ip/il size mismatch")));
                    }
                    for ((user, list), (ip_user, first)) in
                        entries.iter().zip(users.iter().zip(firsts.iter()))
                    {
                        if user != ip_user || list[0] != *first {
                            return Err(corrupt(format!(
                                "{at}: ip first-occurrence mismatch for user {user}"
                            )));
                        }
                    }

                    let pmeta_bytes = reader.read_block(format::PMETA_BLOCK)?;
                    let parts = format::decode_partition_meta(&pmeta_bytes)?;
                    if parts.len() != kw.num_partitions as usize {
                        return Err(corrupt(format!("{at}: partition count mismatch")));
                    }
                    let user_total: u64 = parts.iter().map(|p| p.user_count as u64).sum();
                    if user_total != entries.len() as u64 {
                        return Err(corrupt(format!("{at}: partition users != il users")));
                    }
                    // Only sets this shard holds a slice of are assigned
                    // to a partition (== all θ_w of them when flat).
                    let nonempty = sets.iter().filter(|s| !s.is_empty()).count() as u64;
                    let rr_total: u64 = parts.iter().map(|p| p.rr_count as u64).sum();
                    if rr_total != nonempty {
                        return Err(corrupt(format!(
                            "{at}: partitions cover {rr_total} sets, segment holds {nonempty}"
                        )));
                    }
                    let mut seen = vec![false; kw.theta as usize];
                    for (p, part) in parts.iter().enumerate() {
                        if part.user_count == 0 || part.user_count > partition_size {
                            return Err(corrupt(format!(
                                "{at}: partition {p} has {} users (δ = {partition_size})",
                                part.user_count
                            )));
                        }
                        let ir = reader.read_range(
                            format::IRP_BLOCK,
                            part.ir_start,
                            part.ir_end - part.ir_start,
                        )?;
                        let ir_entries = format::decode_ir_entries(&ir, codec, u32::MAX)?;
                        if ir_entries.len() != part.rr_count as usize {
                            return Err(corrupt(format!(
                                "{at}: partition {p} decodes {} sets, meta says {}",
                                ir_entries.len(),
                                part.rr_count
                            )));
                        }
                        for (id, members) in &ir_entries {
                            let id = *id as usize;
                            if id >= seen.len() || seen[id] {
                                return Err(corrupt(format!(
                                    "{at}: rr id {id} out of range or duplicated"
                                )));
                            }
                            seen[id] = true;
                            if members != &sets[id] {
                                return Err(corrupt(format!(
                                    "{at}: partition copy of rr {id} differs from rr block"
                                )));
                            }
                        }
                        report.partitions_checked += 1;
                    }
                    if seen.iter().zip(sets.iter()).any(|(&s, set)| s == set.is_empty()) {
                        return Err(corrupt(format!(
                            "{at}: partition assignment does not match the non-empty rr sets"
                        )));
                    }
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use crate::build::{IndexBuildConfig, IndexBuilder};
    use crate::format::IndexVariant;
    use crate::KbtimIndex;
    use kbtim_core::theta::SamplingConfig;
    use kbtim_datagen::{DatasetConfig, DatasetFamily};
    use kbtim_propagation::model::IcModel;
    use kbtim_storage::{IoStats, TempDir};

    fn build_sharded(dir: &std::path::Path, variant: IndexVariant, shards: usize) {
        let data = DatasetConfig::family(DatasetFamily::News)
            .num_users(400)
            .num_topics(5)
            .seed(61)
            .build();
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(900),
                opt_initial_samples: 64,
                opt_max_rounds: 5,
                ..SamplingConfig::fast()
            },
            variant,
            shards,
            ..IndexBuildConfig::default()
        };
        IndexBuilder::new(&model, &data.profiles, config).build(dir).unwrap();
    }

    fn build(dir: &std::path::Path, variant: IndexVariant) {
        build_sharded(dir, variant, 1)
    }

    #[test]
    fn fresh_irr_index_validates() {
        let dir = TempDir::new("validate-irr").unwrap();
        build(dir.path(), IndexVariant::Irr { partition_size: 16 });
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let report = index.validate().unwrap();
        assert!(report.keywords_checked > 0);
        assert!(report.rr_sets_checked > 0);
        assert!(report.il_entries_checked > 0);
        assert!(report.partitions_checked > 0);
        assert_eq!(report.shards_checked, 1);
    }

    #[test]
    fn fresh_rr_index_validates() {
        let dir = TempDir::new("validate-rr").unwrap();
        build(dir.path(), IndexVariant::Rr);
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let report = index.validate().unwrap();
        assert!(report.keywords_checked > 0);
        assert_eq!(report.partitions_checked, 0);
    }

    #[test]
    fn fresh_sharded_index_validates() {
        let dir = TempDir::new("validate-sharded").unwrap();
        build_sharded(dir.path(), IndexVariant::Irr { partition_size: 16 }, 4);
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let report = index.validate().unwrap();
        assert_eq!(report.shards_checked, 4);
        assert!(report.keywords_checked > 0);
        // A set splitting across shards is checked once per slice (≥ the
        // flat count), while IL entries partition exactly across shards.
        let flat_dir = TempDir::new("validate-sharded-flat").unwrap();
        build(flat_dir.path(), IndexVariant::Irr { partition_size: 16 });
        let flat = KbtimIndex::open(flat_dir.path(), IoStats::new()).unwrap();
        let flat_report = flat.validate().unwrap();
        assert!(report.rr_sets_checked >= flat_report.rr_sets_checked);
        assert_eq!(report.il_entries_checked, flat_report.il_entries_checked);
    }

    #[test]
    fn sharded_bit_flips_fail_validation() {
        let dir = TempDir::new("validate-sharded-flip").unwrap();
        build_sharded(dir.path(), IndexVariant::Irr { partition_size: 16 }, 2);
        // Corrupt one byte of one shard's keyword segment payload.
        let shard_dir = dir.path().join(crate::format::shard_dir_name(1));
        let victim = std::fs::read_dir(&shard_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("kw_"))
            .unwrap();
        let mut bytes = std::fs::read(&victim).unwrap();
        let target = bytes.len() / 3;
        bytes[target] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();
        match KbtimIndex::open(dir.path(), IoStats::new()) {
            Err(_) => {} // directory/footer damage: also acceptable
            Ok(index) => {
                assert!(index.validate().is_err(), "validation must catch the flip");
            }
        }
    }

    #[test]
    fn swapped_shard_segment_fails_validation() {
        // Swap two shards' copies of the same keyword: every block still
        // parses and is internally consistent, but members land outside
        // the owning shard's range and the manifest fingerprint breaks.
        let dir = TempDir::new("validate-shard-swap").unwrap();
        build_sharded(dir.path(), IndexVariant::Rr, 2);
        let a = dir.path().join(crate::format::shard_dir_name(0));
        let b = dir.path().join(crate::format::shard_dir_name(1));
        let victim = std::fs::read_dir(&a)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("kw_"))
            .unwrap();
        let name = victim.file_name().unwrap().to_owned();
        let tmp = dir.path().join("swap.tmp");
        std::fs::rename(a.join(&name), &tmp).unwrap();
        std::fs::rename(b.join(&name), a.join(&name)).unwrap();
        std::fs::rename(&tmp, b.join(&name)).unwrap();
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        assert!(index.validate().is_err(), "validation must catch the swap");
    }

    #[test]
    fn bit_flips_fail_validation() {
        let dir = TempDir::new("validate-flip").unwrap();
        build(dir.path(), IndexVariant::Irr { partition_size: 16 });
        // Corrupt one keyword segment payload byte (past the header).
        let victim = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("kw_"))
            .unwrap();
        let mut bytes = std::fs::read(&victim).unwrap();
        let target = bytes.len() / 3;
        bytes[target] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();
        match KbtimIndex::open(dir.path(), IoStats::new()) {
            Err(_) => {} // directory/footer damage: also acceptable
            Ok(index) => {
                assert!(index.validate().is_err(), "validation must catch the flip");
            }
        }
    }
}
