//! Structural validation of an on-disk index.
//!
//! [`KbtimIndex::validate`] re-reads every block (checksum-verified) and
//! cross-checks the invariants the query algorithms rely on. It is the
//! "fsck" of the index: run it after copying indexes between machines or
//! when debugging a suspected corruption that the per-block CRCs cannot
//! see (e.g. a truncated catalog pointing at a stale segment).

use crate::format;
use crate::{IndexError, KbtimIndex};
use std::collections::HashMap;

/// Summary of a successful validation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Keywords with a segment (θ_w > 0).
    pub keywords_checked: u32,
    /// Total RR sets decoded and verified.
    pub rr_sets_checked: u64,
    /// Total inverted-list entries verified.
    pub il_entries_checked: u64,
    /// Total IRR partitions verified (0 for the RR variant).
    pub partitions_checked: u64,
}

impl KbtimIndex {
    /// Verify every structural invariant of the index. Returns a summary
    /// on success; the first violated invariant aborts with
    /// [`IndexError::Corrupt`].
    pub fn validate(&self) -> Result<ValidationReport, IndexError> {
        let corrupt = |msg: String| IndexError::Corrupt(msg);
        let codec = self.meta().codec;
        let mut report = ValidationReport::default();

        for kw in &self.meta().keywords {
            if kw.theta == 0 {
                continue;
            }
            let topic = kw.topic;
            let reader = self.source(topic)?;
            report.keywords_checked += 1;

            // --- rr + rr_off ------------------------------------------------
            let off_bytes = reader.read_block(format::RR_OFF_BLOCK)?;
            if off_bytes.len() as u64 != (kw.theta + 1) * 8 {
                return Err(corrupt(format!(
                    "topic {topic}: offset table has {} bytes for theta {}",
                    off_bytes.len(),
                    kw.theta
                )));
            }
            let offsets: Vec<u64> = off_bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunked")))
                .collect();
            if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(corrupt(format!("topic {topic}: offsets not monotone from 0")));
            }
            let rr_bytes = reader.read_block(format::RR_BLOCK)?;
            if *offsets.last().expect("non-empty") != rr_bytes.len() as u64 {
                return Err(corrupt(format!("topic {topic}: offsets do not span the rr block")));
            }
            let sets = format::decode_rr_prefix(&rr_bytes, kw.theta, codec)?;
            let mut members_total = 0u64;
            for (i, set) in sets.iter().enumerate() {
                if set.is_empty() {
                    return Err(corrupt(format!("topic {topic}: rr set {i} is empty")));
                }
                if set.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(corrupt(format!("topic {topic}: rr set {i} not sorted/unique")));
                }
                if *set.last().expect("non-empty") >= self.meta().num_users {
                    return Err(corrupt(format!("topic {topic}: rr set {i} has bad node id")));
                }
                members_total += set.len() as u64;
            }
            if members_total != kw.total_rr_members {
                return Err(corrupt(format!(
                    "topic {topic}: catalog says {} members, segment has {members_total}",
                    kw.total_rr_members
                )));
            }
            report.rr_sets_checked += sets.len() as u64;

            // --- il: exact inverse of the rr sets ---------------------------
            let il_bytes = reader.read_block(format::IL_BLOCK)?;
            let entries = format::decode_il_entries(&il_bytes, codec)?;
            let mut expected: HashMap<u32, Vec<u32>> = HashMap::new();
            for (id, set) in sets.iter().enumerate() {
                for &node in set {
                    expected.entry(node).or_default().push(id as u32);
                }
            }
            if entries.len() != expected.len() {
                return Err(corrupt(format!(
                    "topic {topic}: il has {} entries, expected {}",
                    entries.len(),
                    expected.len()
                )));
            }
            let mut max_len = 0u32;
            for (user, list) in &entries {
                let want = expected
                    .get(user)
                    .ok_or_else(|| corrupt(format!("topic {topic}: il user {user} unknown")))?;
                if want != list {
                    return Err(corrupt(format!("topic {topic}: il mismatch for user {user}")));
                }
                max_len = max_len.max(list.len() as u32);
            }
            if max_len != kw.max_list_len {
                return Err(corrupt(format!(
                    "topic {topic}: catalog max list len {} vs actual {max_len}",
                    kw.max_list_len
                )));
            }
            report.il_entries_checked += entries.len() as u64;

            // --- IRR blocks -------------------------------------------------
            if let format::IndexVariant::Irr { partition_size } = self.meta().variant {
                let ip_bytes = reader.read_block(format::IP_BLOCK)?;
                let (users, firsts) = format::decode_ip(&ip_bytes, codec)?;
                if users.len() != entries.len() {
                    return Err(corrupt(format!("topic {topic}: ip/il size mismatch")));
                }
                for ((user, list), (ip_user, first)) in
                    entries.iter().zip(users.iter().zip(firsts.iter()))
                {
                    if user != ip_user || list[0] != *first {
                        return Err(corrupt(format!(
                            "topic {topic}: ip first-occurrence mismatch for user {user}"
                        )));
                    }
                }

                let pmeta_bytes = reader.read_block(format::PMETA_BLOCK)?;
                let parts = format::decode_partition_meta(&pmeta_bytes)?;
                if parts.len() != kw.num_partitions as usize {
                    return Err(corrupt(format!("topic {topic}: partition count mismatch")));
                }
                let user_total: u64 = parts.iter().map(|p| p.user_count as u64).sum();
                if user_total != entries.len() as u64 {
                    return Err(corrupt(format!("topic {topic}: partition users != il users")));
                }
                let rr_total: u64 = parts.iter().map(|p| p.rr_count as u64).sum();
                if rr_total != kw.theta {
                    return Err(corrupt(format!(
                        "topic {topic}: partitions cover {rr_total} sets, theta is {}",
                        kw.theta
                    )));
                }
                let mut seen = vec![false; kw.theta as usize];
                for (p, part) in parts.iter().enumerate() {
                    if part.user_count == 0 || part.user_count > partition_size {
                        return Err(corrupt(format!(
                            "topic {topic}: partition {p} has {} users (δ = {partition_size})",
                            part.user_count
                        )));
                    }
                    let ir = reader.read_range(
                        format::IRP_BLOCK,
                        part.ir_start,
                        part.ir_end - part.ir_start,
                    )?;
                    let ir_entries = format::decode_ir_entries(&ir, codec, u32::MAX)?;
                    if ir_entries.len() != part.rr_count as usize {
                        return Err(corrupt(format!(
                            "topic {topic}: partition {p} decodes {} sets, meta says {}",
                            ir_entries.len(),
                            part.rr_count
                        )));
                    }
                    for (id, members) in &ir_entries {
                        let id = *id as usize;
                        if id >= seen.len() || seen[id] {
                            return Err(corrupt(format!(
                                "topic {topic}: rr id {id} out of range or duplicated"
                            )));
                        }
                        seen[id] = true;
                        if members != &sets[id] {
                            return Err(corrupt(format!(
                                "topic {topic}: partition copy of rr {id} differs from rr block"
                            )));
                        }
                    }
                    report.partitions_checked += 1;
                }
                if !seen.iter().all(|&s| s) {
                    return Err(corrupt(format!("topic {topic}: some rr sets unassigned")));
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use crate::build::{IndexBuildConfig, IndexBuilder};
    use crate::format::IndexVariant;
    use crate::KbtimIndex;
    use kbtim_core::theta::SamplingConfig;
    use kbtim_datagen::{DatasetConfig, DatasetFamily};
    use kbtim_propagation::model::IcModel;
    use kbtim_storage::{IoStats, TempDir};

    fn build(dir: &std::path::Path, variant: IndexVariant) {
        let data = DatasetConfig::family(DatasetFamily::News)
            .num_users(400)
            .num_topics(5)
            .seed(61)
            .build();
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(900),
                opt_initial_samples: 64,
                opt_max_rounds: 5,
                ..SamplingConfig::fast()
            },
            variant,
            ..IndexBuildConfig::default()
        };
        IndexBuilder::new(&model, &data.profiles, config).build(dir).unwrap();
    }

    #[test]
    fn fresh_irr_index_validates() {
        let dir = TempDir::new("validate-irr").unwrap();
        build(dir.path(), IndexVariant::Irr { partition_size: 16 });
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let report = index.validate().unwrap();
        assert!(report.keywords_checked > 0);
        assert!(report.rr_sets_checked > 0);
        assert!(report.il_entries_checked > 0);
        assert!(report.partitions_checked > 0);
    }

    #[test]
    fn fresh_rr_index_validates() {
        let dir = TempDir::new("validate-rr").unwrap();
        build(dir.path(), IndexVariant::Rr);
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let report = index.validate().unwrap();
        assert!(report.keywords_checked > 0);
        assert_eq!(report.partitions_checked, 0);
    }

    #[test]
    fn bit_flips_fail_validation() {
        let dir = TempDir::new("validate-flip").unwrap();
        build(dir.path(), IndexVariant::Irr { partition_size: 16 });
        // Corrupt one keyword segment payload byte (past the header).
        let victim = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("kw_"))
            .unwrap();
        let mut bytes = std::fs::read(&victim).unwrap();
        let target = bytes.len() / 3;
        bytes[target] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();
        match KbtimIndex::open(dir.path(), IoStats::new()) {
            Err(_) => {} // directory/footer damage: also acceptable
            Ok(index) => {
                assert!(index.validate().is_err(), "validation must catch the flip");
            }
        }
    }
}
