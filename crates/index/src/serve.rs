//! The concurrent serving runtime: a [`QueryEngine`] admitting rr / irr
//! / auto / memory queries from many client threads against one shared
//! [`Arc<KbtimIndex>`].
//!
//! The paper's headline claim is *real-time* targeted IM — millisecond
//! keyword queries served to many concurrent advertisers — and this
//! module is the piece that turns the batch query paths into a server:
//!
//! * **Shared index**: [`KbtimIndex`] is `Send + Sync` (asserted below),
//!   so one open index serves every client thread through an `Arc`. Its
//!   scratch pool leases per-query buffers across threads (concurrent
//!   queries take distinct blocks; the pool grows to the high-water
//!   concurrency and then stops allocating) and its persistent
//!   [`kbtim_exec::ExecPool`] is built once, not per query.
//! * **Same-request batching**: concurrent identical requests (same
//!   keywords, same `k`, same algorithm) collapse to one execution — the
//!   first caller computes, the rest wait on the in-flight entry and
//!   share the `Arc`'d outcome. Advertiser workloads are Zipfian over
//!   keywords, so under load this shaves the hottest queries to a single
//!   execution per arrival wave.
//! * **Determinism**: queries are read-only and scratch contents never
//!   influence answers, so any interleaving of concurrent clients
//!   produces outcomes bit-identical to running the same requests
//!   serially — the contract `tests/concurrent_equiv.rs` enforces
//!   across every serving backend.
//!
//! The line-protocol front end (`kbtim serve`) in the facade crate is a
//! thin wrapper over this engine.

use crate::{IndexError, KbtimIndex, MemoryIndex, QueryOutcome};
use kbtim_topics::{Query, TopicId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Which query algorithm a request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algo {
    /// Algorithm 2 over the RR prefix (works on both index variants).
    Rr,
    /// Algorithm 4's incremental NRA (requires the IRR variant).
    Irr,
    /// The index's cost-model pick between the two.
    #[default]
    Auto,
    /// The RAM-resident serving copy (requires
    /// [`QueryEngine::with_memory`]).
    Memory,
}

impl Algo {
    /// Parse the CLI/protocol spelling (`rr` / `irr` / `auto` /
    /// `memory`).
    pub fn parse(s: &str) -> Option<Algo> {
        match s {
            "rr" => Some(Algo::Rr),
            "irr" => Some(Algo::Irr),
            "auto" => Some(Algo::Auto),
            "memory" => Some(Algo::Memory),
            _ => None,
        }
    }

    /// Stable lowercase name (the CLI/protocol spelling).
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Rr => "rr",
            Algo::Irr => "irr",
            Algo::Auto => "auto",
            Algo::Memory => "memory",
        }
    }
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A serving-tier error: shareable (cloned to every coalesced waiter of
/// a failed request) and convertible from the index error it wraps.
#[derive(Debug, Clone)]
pub struct EngineError(Arc<IndexError>);

impl EngineError {
    /// The underlying index error.
    pub fn index_error(&self) -> &IndexError {
        &self.0
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for EngineError {}

impl From<IndexError> for EngineError {
    fn from(e: IndexError) -> EngineError {
        EngineError(Arc::new(e))
    }
}

/// One serving request: which keywords, how many seeds, which algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EngineRequest {
    /// Query keywords (topic ids).
    pub topics: Vec<TopicId>,
    /// Number of seeds to select.
    pub k: u32,
    /// Query algorithm.
    pub algo: Algo,
}

impl EngineRequest {
    /// A request with the default ([`Algo::Auto`]) algorithm.
    pub fn new(topics: impl IntoIterator<Item = TopicId>, k: u32) -> EngineRequest {
        EngineRequest { topics: topics.into_iter().collect(), k, algo: Algo::Auto }
    }

    /// Builder-style algorithm override.
    pub fn with_algo(mut self, algo: Algo) -> EngineRequest {
        self.algo = algo;
        self
    }
}

/// Result type of [`QueryEngine::query`]: the outcome is `Arc`'d because
/// coalesced waiters share the computing caller's answer.
pub type EngineResult = Result<Arc<QueryOutcome>, EngineError>;

/// In-flight slot one caller computes into while identical requests
/// wait.
struct Flight {
    done: Mutex<Option<EngineResult>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight { done: Mutex::new(None), cv: Condvar::new() }
    }

    fn complete(&self, result: EngineResult) {
        *self.done.lock().expect("flight poisoned") = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> EngineResult {
        let mut done = self.done.lock().expect("flight poisoned");
        loop {
            if let Some(result) = done.as_ref() {
                return result.clone();
            }
            done = self.cv.wait(done).expect("flight poisoned");
        }
    }
}

/// A concurrent query engine over one shared index (see the module
/// docs).
///
/// All methods take `&self`; wrap the engine in an `Arc` and hand clones
/// to every client thread.
pub struct QueryEngine {
    index: Arc<KbtimIndex>,
    memory: Option<MemoryIndex>,
    inflight: Mutex<HashMap<EngineRequest, Arc<Flight>>>,
    executed: AtomicU64,
    coalesced: AtomicU64,
}

impl QueryEngine {
    /// An engine serving the disk paths (`rr` / `irr` / `auto`) of
    /// `index`.
    pub fn new(index: Arc<KbtimIndex>) -> QueryEngine {
        QueryEngine {
            index,
            memory: None,
            inflight: Mutex::new(HashMap::new()),
            executed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// [`QueryEngine::new`] plus a RAM-resident [`MemoryIndex`] serving
    /// copy, enabling [`Algo::Memory`]. On zero-copy backends the load
    /// borrows the index's already-resident pages.
    pub fn with_memory(index: Arc<KbtimIndex>) -> Result<QueryEngine, IndexError> {
        let memory = MemoryIndex::load(&index)?;
        let mut engine = QueryEngine::new(index);
        engine.memory = Some(memory);
        Ok(engine)
    }

    /// The shared index this engine serves.
    pub fn index(&self) -> &Arc<KbtimIndex> {
        &self.index
    }

    /// Whether [`Algo::Memory`] requests can be served.
    pub fn has_memory(&self) -> bool {
        self.memory.is_some()
    }

    /// Requests this engine actually executed (excluding coalesced
    /// ones).
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Requests answered by joining another caller's identical in-flight
    /// request.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Answer `req`, sharing the computation with any identical request
    /// currently in flight.
    ///
    /// Safe to call from any number of threads; the answer is
    /// bit-identical to running the same request alone.
    pub fn query(&self, req: &EngineRequest) -> EngineResult {
        let flight = {
            let mut inflight = self.inflight.lock().expect("inflight table poisoned");
            if let Some(flight) = inflight.get(req) {
                let flight = Arc::clone(flight);
                drop(inflight);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                return flight.wait();
            }
            let flight = Arc::new(Flight::new());
            inflight.insert(req.clone(), Arc::clone(&flight));
            flight
        };

        // A panicking query (e.g. a corrupt-index assert deep in the IRR
        // path) must not wedge the flight: waiters would block forever
        // and every future identical request would coalesce onto the
        // dead entry. Catch, fail the flight, re-throw.
        let result =
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.execute(req))) {
                Ok(result) => result,
                Err(payload) => {
                    self.inflight.lock().expect("inflight table poisoned").remove(req);
                    flight.complete(Err(EngineError::from(IndexError::Corrupt(
                        "query execution panicked".to_string(),
                    ))));
                    std::panic::resume_unwind(payload);
                }
            };
        self.executed.fetch_add(1, Ordering::Relaxed);
        self.inflight.lock().expect("inflight table poisoned").remove(req);
        flight.complete(result.clone());
        result
    }

    /// Run the request directly, bypassing coalescing (the serial-oracle
    /// path benchmarks compare against).
    pub fn execute(&self, req: &EngineRequest) -> EngineResult {
        let query = Query::new(req.topics.iter().copied(), req.k);
        let outcome = match req.algo {
            Algo::Rr => self.index.query_rr(&query)?,
            Algo::Irr => self.index.query_irr(&query)?,
            Algo::Auto => self.index.query_auto(&query)?,
            Algo::Memory => match &self.memory {
                Some(memory) => memory.query(&query),
                None => {
                    return Err(EngineError::from(IndexError::Corrupt(
                        "engine was built without a memory serving copy \
                         (use QueryEngine::with_memory)"
                            .to_string(),
                    )))
                }
            },
        };
        Ok(Arc::new(outcome))
    }
}

// The serving runtime's foundation: one index, one engine, any number of
// client threads. A compile error here means a field regressed to a
// non-thread-safe type.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<KbtimIndex>();
    assert_send_sync::<MemoryIndex>();
    assert_send_sync::<QueryEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{IndexBuildConfig, IndexBuilder};
    use crate::format::IndexVariant;
    use kbtim_core::theta::SamplingConfig;
    use kbtim_datagen::{DatasetConfig, DatasetFamily};
    use kbtim_propagation::model::IcModel;
    use kbtim_storage::{IoStats, TempDir};

    fn build_engine(dir: &std::path::Path) -> QueryEngine {
        let data = DatasetConfig::family(DatasetFamily::News)
            .num_users(400)
            .num_topics(6)
            .seed(91)
            .build();
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(1_000),
                opt_initial_samples: 64,
                opt_max_rounds: 5,
                ..SamplingConfig::fast()
            },
            variant: IndexVariant::Irr { partition_size: 20 },
            ..IndexBuildConfig::default()
        };
        IndexBuilder::new(&model, &data.profiles, config).build(dir).unwrap();
        let index = Arc::new(KbtimIndex::open(dir, IoStats::new()).unwrap());
        QueryEngine::with_memory(index).unwrap()
    }

    #[test]
    fn engine_matches_direct_queries() {
        let dir = TempDir::new("engine-direct").unwrap();
        let engine = build_engine(dir.path());
        let query = Query::new([0u32, 1], 8);
        let direct_rr = engine.index().query_rr(&query).unwrap();
        let direct_irr = engine.index().query_irr(&query).unwrap();
        for (algo, want) in
            [(Algo::Rr, &direct_rr), (Algo::Irr, &direct_irr), (Algo::Memory, &direct_rr)]
        {
            let got = engine.query(&EngineRequest::new([0, 1], 8).with_algo(algo)).unwrap();
            assert_eq!(got.seeds, want.seeds, "{algo}");
            assert_eq!(got.coverage, want.coverage, "{algo}");
        }
    }

    #[test]
    fn concurrent_identical_requests_share_one_answer() {
        let dir = TempDir::new("engine-coalesce").unwrap();
        let engine = Arc::new(build_engine(dir.path()));
        let req = EngineRequest::new([0, 1, 2], 10).with_algo(Algo::Rr);
        let serial = engine.execute(&req).unwrap();
        let issued = 16;

        let barrier = std::sync::Barrier::new(issued);
        std::thread::scope(|scope| {
            let joins: Vec<_> = (0..issued)
                .map(|_| {
                    let engine = Arc::clone(&engine);
                    let req = req.clone();
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        engine.query(&req).unwrap()
                    })
                })
                .collect();
            for join in joins {
                let got = join.join().unwrap();
                assert_eq!(got.seeds, serial.seeds);
                assert_eq!(got.marginal_gains, serial.marginal_gains);
            }
        });
        // Every request is either executed or coalesced; how many
        // coalesce depends on timing, but the books must balance (the
        // serial oracle went through `execute`, which never counts).
        assert_eq!(engine.executed() + engine.coalesced(), issued as u64);
        assert!(engine.executed() >= 1);
    }

    #[test]
    fn memory_without_loading_is_an_error() {
        let dir = TempDir::new("engine-nomem").unwrap();
        let engine = build_engine(dir.path());
        let index = Arc::clone(engine.index());
        let bare = QueryEngine::new(index);
        assert!(!bare.has_memory());
        let err = bare.query(&EngineRequest::new([0], 3).with_algo(Algo::Memory)).unwrap_err();
        assert!(err.to_string().contains("memory serving copy"), "{err}");
    }

    #[test]
    fn algo_parse_roundtrip() {
        for algo in [Algo::Rr, Algo::Irr, Algo::Auto, Algo::Memory] {
            assert_eq!(Algo::parse(algo.name()), Some(algo));
        }
        assert_eq!(Algo::parse("bogus"), None);
        assert_eq!(Algo::default(), Algo::Auto);
    }
}
