//! The concurrent serving runtime: a [`QueryEngine`] admitting rr / irr
//! / auto / memory queries from many client threads against one shared
//! [`Arc<KbtimIndex>`].
//!
//! The paper's headline claim is *real-time* targeted IM — millisecond
//! keyword queries served to many concurrent advertisers — and this
//! module is the piece that turns the batch query paths into a server:
//!
//! * **Shared index**: [`KbtimIndex`] is `Send + Sync` (asserted below),
//!   so one open index serves every client thread through an `Arc`. Its
//!   scratch pool leases per-query buffers across threads (concurrent
//!   queries take distinct blocks; the pool grows to the high-water
//!   concurrency and then stops allocating) and its persistent
//!   [`kbtim_exec::ExecPool`] is built once, not per query.
//! * **Same-request batching**: concurrent identical requests (same
//!   keywords, same `k`, same algorithm) collapse to one execution — the
//!   first caller computes, the rest wait on the in-flight entry and
//!   share the `Arc`'d outcome. Advertiser workloads are Zipfian over
//!   keywords, so under load this shaves the hottest queries to a single
//!   execution per arrival wave.
//! * **Cross-request batching**: with a batch window configured
//!   ([`QueryEngine::set_batch_window`]), a short admission window
//!   collects concurrent in-flight requests into one batch, decodes
//!   each *distinct* keyword's inverted lists and RR prefix **once**
//!   into a shared [`KeywordArena`], and runs every request's own
//!   merge + greedy over the shared structures — so N different
//!   same-keyword queries pay the expensive per-keyword decode once
//!   per batch, not once per request. Requests over the same keyword
//!   set additionally share one greedy run: seeds are selected
//!   sequentially and `k` only bounds the loop, so one max-`k` run
//!   prefix-slices into every member's answer. Memory-algo requests
//!   pass through unshared (they are already decode-free).
//! * **Prepared-query cache**: with a capacity configured
//!   ([`QueryEngine::set_merge_cache`]), finished keyword-set merges
//!   are kept in a capacity-bounded LRU keyed by the sorted keyword
//!   set and the index's segment generation
//!   ([`KbtimIndex::segment_fingerprint`]). A later batch hitting the
//!   same keyword set skips that set's decode *and* merge entirely —
//!   hot advertiser keyword sets stop paying decode cost across
//!   batches, not just within one.
//! * **Determinism**: queries are read-only and scratch contents never
//!   influence answers, so any interleaving of concurrent clients —
//!   and any grouping the batch planner happens to admit — produces
//!   outcomes bit-identical to running the same requests serially —
//!   the contract `tests/concurrent_equiv.rs` enforces across every
//!   serving backend.
//!
//! The line-protocol front end (`kbtim serve`) in the facade crate is a
//! thin wrapper over this engine.

use crate::delta::{self, DeltaIndex, DeltaSnapshot};
use crate::rr_query::MergedQuery;
use crate::scratch::KeywordArena;
use crate::{IndexError, KbtimIndex, MemoryIndex, QueryCtx, QueryOutcome};
use kbtim_topics::{Query, TopicId};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Lock a serving-tier mutex, recovering from poisoning: a client
/// thread that panicked mid-request (a contained query panic) must not
/// wedge every later request on the shared engine state. All guarded
/// state here is kept consistent between lock operations, so the
/// recovered guard is always safe to use.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Which query algorithm a request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algo {
    /// Algorithm 2 over the RR prefix (works on both index variants).
    Rr,
    /// Algorithm 4's incremental NRA (requires the IRR variant).
    Irr,
    /// The index's cost-model pick between the two.
    #[default]
    Auto,
    /// The RAM-resident serving copy (requires
    /// [`QueryEngine::with_memory`]).
    Memory,
}

impl Algo {
    /// Parse the CLI/protocol spelling (`rr` / `irr` / `auto` /
    /// `memory`).
    pub fn parse(s: &str) -> Option<Algo> {
        match s {
            "rr" => Some(Algo::Rr),
            "irr" => Some(Algo::Irr),
            "auto" => Some(Algo::Auto),
            "memory" => Some(Algo::Memory),
            _ => None,
        }
    }

    /// Stable lowercase name (the CLI/protocol spelling).
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Rr => "rr",
            Algo::Irr => "irr",
            Algo::Auto => "auto",
            Algo::Memory => "memory",
        }
    }
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A serving-tier error: shareable (cloned to every coalesced waiter of
/// a failed request) and convertible from the index error it wraps.
#[derive(Debug, Clone)]
pub struct EngineError(Arc<IndexError>);

impl EngineError {
    /// The underlying index error.
    pub fn index_error(&self) -> &IndexError {
        &self.0
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for EngineError {}

impl From<IndexError> for EngineError {
    fn from(e: IndexError) -> EngineError {
        EngineError(Arc::new(e))
    }
}

/// One serving request: which keywords, how many seeds, which algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EngineRequest {
    /// Query keywords (topic ids).
    pub topics: Vec<TopicId>,
    /// Number of seeds to select.
    pub k: u32,
    /// Query algorithm.
    pub algo: Algo,
}

impl EngineRequest {
    /// A request with the default ([`Algo::Auto`]) algorithm.
    pub fn new(topics: impl IntoIterator<Item = TopicId>, k: u32) -> EngineRequest {
        EngineRequest { topics: topics.into_iter().collect(), k, algo: Algo::Auto }
    }

    /// Builder-style algorithm override.
    pub fn with_algo(mut self, algo: Algo) -> EngineRequest {
        self.algo = algo;
        self
    }
}

/// Result type of [`QueryEngine::query`]: the outcome is `Arc`'d because
/// coalesced waiters share the computing caller's answer.
pub type EngineResult = Result<Arc<QueryOutcome>, EngineError>;

/// In-flight slot one caller computes into while identical requests
/// wait.
struct Flight {
    done: Mutex<Option<EngineResult>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight { done: Mutex::new(None), cv: Condvar::new() }
    }

    fn complete(&self, result: EngineResult) {
        *lock_recover(&self.done) = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> EngineResult {
        let mut done = lock_recover(&self.done);
        loop {
            if let Some(result) = done.as_ref() {
                return result.clone();
            }
            done = self.cv.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The batch planner's admission state: requests queued during the
/// current window plus whether a leader is currently collecting.
#[derive(Default)]
struct BatchQueue {
    pending: Vec<(EngineRequest, Option<Instant>, Arc<Flight>)>,
    /// True while some caller is inside the admission window; its drain
    /// will take everything queued here. The first arrival after a
    /// drain becomes the next leader.
    collecting: bool,
}

/// Cross-request batch planner configuration + queue (see the module
/// docs).
struct Batcher {
    /// Admission window: how long the batch leader waits for more
    /// concurrent arrivals before executing the batch.
    window: Duration,
    /// Early-fire cap: a full batch executes before the window closes.
    max_requests: usize,
    queue: Mutex<BatchQueue>,
    /// Signalled on every arrival so a leader can fire early at the cap.
    arrived: Condvar,
}

/// One cached prepared query: the shared merged instance plus its LRU
/// and accounting state.
struct MergeEntry {
    merged: Arc<MergedQuery>,
    /// Arena bytes this entry keeps resident (snapshotted at insert so
    /// the books stay consistent on eviction).
    bytes: u64,
    /// Logical timestamp of the last hit (or the insert).
    last_used: u64,
}

/// The cross-batch prepared-query cache: a capacity-bounded LRU of
/// shared [`MergedQuery`] instances, keyed by (segment generation,
/// sorted keyword set).
///
/// The merged coverage instance is a pure function of the sorted
/// keyword set and the on-disk segment bytes (`Q.k` only bounds the
/// greedy loop), so an entry may serve any request over its keyword set
/// for as long as the segment generation matches — the fingerprint in
/// the key ties invalidation to segment identity exactly as the storage
/// [`kbtim_storage::PageCache`] ties loaded pages to it. Entries are
/// `Arc`'d: eviction drops the cache's reference while in-flight
/// batches keep theirs, so capacity changes are always safe.
struct MergeCache {
    /// Maximum number of entries (≥ 1; 0 disables the cache entirely,
    /// represented as `QueryEngine::merge_cache == None`).
    capacity: usize,
    state: Mutex<MergeCacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

#[derive(Default)]
struct MergeCacheState {
    entries: HashMap<(u64, Vec<TopicId>), MergeEntry>,
    /// Monotone logical clock backing the LRU order.
    tick: u64,
    /// Σ `bytes` over live entries.
    bytes: u64,
}

impl MergeCache {
    fn new(capacity: usize) -> MergeCache {
        MergeCache {
            capacity,
            state: Mutex::new(MergeCacheState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up a keyword set under a segment generation, bumping its
    /// recency on a hit. Books every probe as a hit or a miss.
    fn get(&self, fingerprint: u64, topics: &[TopicId]) -> Option<Arc<MergedQuery>> {
        let mut state = lock_recover(&self.state);
        state.tick += 1;
        let tick = state.tick;
        match state.entries.get_mut(&(fingerprint, topics.to_vec())) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.merged))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publish a freshly merged instance, evicting least-recently-used
    /// entries down to capacity. Replacing an existing key (two batches
    /// racing the same miss) keeps the newer instance — both are
    /// bit-identical by construction.
    fn insert(&self, fingerprint: u64, topics: Vec<TopicId>, merged: Arc<MergedQuery>) {
        let bytes = merged.resident_bytes();
        let mut state = lock_recover(&self.state);
        state.tick += 1;
        let entry = MergeEntry { merged, bytes, last_used: state.tick };
        if let Some(old) = state.entries.insert((fingerprint, topics), entry) {
            state.bytes -= old.bytes;
        }
        state.bytes += bytes;
        while state.entries.len() > self.capacity {
            let victim = state
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(key, _)| key.clone())
                .expect("len > capacity ≥ 1 implies an entry");
            let evicted = state.entries.remove(&victim).expect("victim just found");
            state.bytes -= evicted.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn len(&self) -> usize {
        lock_recover(&self.state).entries.len()
    }

    fn bytes(&self) -> u64 {
        lock_recover(&self.state).bytes
    }
}

/// A concurrent query engine over one shared index (see the module
/// docs).
///
/// All methods take `&self`; wrap the engine in an `Arc` and hand clones
/// to every client thread.
pub struct QueryEngine {
    index: Arc<KbtimIndex>,
    memory: Option<MemoryIndex>,
    delta: Option<Arc<DeltaIndex>>,
    inflight: Mutex<HashMap<EngineRequest, Arc<Flight>>>,
    batch: Option<Batcher>,
    merge_cache: Option<MergeCache>,
    executed: AtomicU64,
    coalesced: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    merged_groups: AtomicU64,
    keywords_decoded: AtomicU64,
    keyword_decodes_shared: AtomicU64,
    greedy_shared: AtomicU64,
}

impl QueryEngine {
    /// An engine serving the disk paths (`rr` / `irr` / `auto`) of
    /// `index`.
    pub fn new(index: Arc<KbtimIndex>) -> QueryEngine {
        QueryEngine {
            index,
            memory: None,
            delta: None,
            inflight: Mutex::new(HashMap::new()),
            batch: None,
            merge_cache: None,
            executed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            merged_groups: AtomicU64::new(0),
            keywords_decoded: AtomicU64::new(0),
            keyword_decodes_shared: AtomicU64::new(0),
            greedy_shared: AtomicU64::new(0),
        }
    }

    /// [`QueryEngine::new`] plus a RAM-resident [`MemoryIndex`] serving
    /// copy, enabling [`Algo::Memory`]. On zero-copy backends the load
    /// borrows the index's already-resident pages.
    pub fn with_memory(index: Arc<KbtimIndex>) -> Result<QueryEngine, IndexError> {
        let memory = MemoryIndex::load(&index)?;
        let mut engine = QueryEngine::new(index);
        engine.memory = Some(memory);
        Ok(engine)
    }

    /// Attach a mutable delta tier (builder-style). With a delta
    /// attached, **every** request — all four algorithms — routes
    /// through the tier's union snapshot: answers reflect base ∪ delta
    /// at a pinned generation, never a stale RAM copy or a stale base
    /// handle left behind by a flush. Bit-identical-across-algos
    /// invariants carry over because all algorithms serve from one
    /// union decode.
    pub fn with_delta(mut self, delta: Arc<DeltaIndex>) -> QueryEngine {
        self.delta = Some(delta);
        self
    }

    /// The attached mutable tier, if any.
    pub fn delta(&self) -> Option<&Arc<DeltaIndex>> {
        self.delta.as_ref()
    }

    /// The current mutation generation (None without a delta tier) —
    /// the protocol's `generation` response field.
    pub fn generation(&self) -> Option<u64> {
        self.delta.as_ref().map(|d| d.generation())
    }

    /// The shared index this engine serves. With a delta tier attached,
    /// this is the base handle the engine was *built* over — a flush
    /// republishes a fresh base inside the tier's snapshots, so live
    /// serving state should come from
    /// [`DeltaIndex::snapshot`](crate::DeltaIndex::snapshot) instead.
    pub fn index(&self) -> &Arc<KbtimIndex> {
        &self.index
    }

    /// Whether [`Algo::Memory`] requests can be served.
    pub fn has_memory(&self) -> bool {
        self.memory.is_some() || self.delta.is_some()
    }

    /// Requests this engine actually executed (excluding coalesced
    /// ones).
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Requests answered by joining another caller's identical in-flight
    /// request (or a duplicate within one batch).
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Enable (or disable, with `None`) the cross-request batch planner
    /// with the given admission window.
    ///
    /// With a window set, [`QueryEngine::query`] collects concurrent
    /// requests for up to `window`, decodes each distinct keyword once
    /// into a shared [`KeywordArena`], and serves every request in the
    /// batch from the shared decode. Answers stay bit-identical to
    /// serial per-request execution; the window only trades a bounded
    /// admission delay for shared decode work under load.
    pub fn set_batch_window(&mut self, window: Option<Duration>) {
        self.batch = window.map(|window| Batcher {
            window,
            max_requests: 64,
            queue: Mutex::new(BatchQueue::default()),
            arrived: Condvar::new(),
        });
    }

    /// Builder-style [`QueryEngine::set_batch_window`].
    pub fn with_batch_window(mut self, window: Option<Duration>) -> QueryEngine {
        self.set_batch_window(window);
        self
    }

    /// The configured batch admission window, if batching is enabled.
    pub fn batch_window(&self) -> Option<Duration> {
        self.batch.as_ref().map(|b| b.window)
    }

    /// Deterministic batch construction for tests and benches. While
    /// held, arriving batched requests enqueue as followers instead of
    /// electing a leader; the first arrival after release leads one
    /// batch holding everything queued meanwhile. Release the hold
    /// *before* issuing that final leading request — held followers
    /// wait indefinitely on a leader that never comes. No-op when
    /// batching is disabled.
    #[doc(hidden)]
    pub fn hold_admission(&self, hold: bool) {
        if let Some(batcher) = &self.batch {
            lock_recover(&batcher.queue).collecting = hold;
        }
    }

    /// Requests currently queued for batch admission (companion of
    /// [`QueryEngine::hold_admission`], for polling until a held batch
    /// has fully assembled).
    #[doc(hidden)]
    pub fn pending_admission(&self) -> usize {
        self.batch.as_ref().map_or(0, |b| lock_recover(&b.queue).pending.len())
    }

    /// Enable (or disable, with 0) the cross-batch prepared-query
    /// cache: a capacity-bounded LRU of up to `entries` keyword-set
    /// merges, keyed by the sorted keyword set and the index's segment
    /// generation ([`KbtimIndex::segment_fingerprint`]).
    ///
    /// With a capacity set, the batch planner probes the cache before
    /// building its decode union: a hit skips that keyword set's decode
    /// and merge entirely, so a hot set pays decode cost once across
    /// batches rather than once per batch. Cached instances are shared
    /// read-only; answers stay bit-identical to uncached serving.
    pub fn set_merge_cache(&mut self, entries: usize) {
        self.merge_cache = (entries > 0).then(|| MergeCache::new(entries));
    }

    /// Builder-style [`QueryEngine::set_merge_cache`].
    pub fn with_merge_cache(mut self, entries: usize) -> QueryEngine {
        self.set_merge_cache(entries);
        self
    }

    /// The prepared-query cache's entry capacity (0 = cache off).
    pub fn merge_cache_capacity(&self) -> usize {
        self.merge_cache.as_ref().map_or(0, |c| c.capacity)
    }

    /// Live entries in the prepared-query cache.
    pub fn merge_cache_len(&self) -> usize {
        self.merge_cache.as_ref().map_or(0, |c| c.len())
    }

    /// Arena bytes held resident by cached prepared queries.
    pub fn merge_cache_bytes(&self) -> u64 {
        self.merge_cache.as_ref().map_or(0, |c| c.bytes())
    }

    /// Prepared-query cache probes that found a live entry.
    pub fn merge_cache_hits(&self) -> u64 {
        self.merge_cache.as_ref().map_or(0, |c| c.hits.load(Ordering::Relaxed))
    }

    /// Prepared-query cache probes that missed.
    pub fn merge_cache_misses(&self) -> u64 {
        self.merge_cache.as_ref().map_or(0, |c| c.misses.load(Ordering::Relaxed))
    }

    /// Entries evicted from the prepared-query cache to stay within
    /// capacity.
    pub fn merge_cache_evictions(&self) -> u64 {
        self.merge_cache.as_ref().map_or(0, |c| c.evictions.load(Ordering::Relaxed))
    }

    /// Batches the planner has executed.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Requests that went through the batch planner (across all
    /// batches, duplicates included).
    pub fn batched_requests(&self) -> u64 {
        self.batched_requests.load(Ordering::Relaxed)
    }

    /// Keyword-set merges the planner performed (one per distinct
    /// keyword set per batch — requests over the same set share one
    /// merged coverage instance and differ only in their greedy run).
    pub fn merged_groups(&self) -> u64 {
        self.merged_groups.load(Ordering::Relaxed)
    }

    /// Distinct keyword decodes the planner performed (once per distinct
    /// keyword per batch).
    pub fn keywords_decoded(&self) -> u64 {
        self.keywords_decoded.load(Ordering::Relaxed)
    }

    /// Keyword decodes *avoided* by sharing: Σ over batched requests of
    /// their budgeted keyword count, minus the distinct decodes
    /// actually performed. The books behind the batching claim — with
    /// batching off this stays 0. (Cache-served keyword sets count in
    /// neither side: their sharing is booked by the cache's own
    /// hit/miss counters.)
    pub fn keyword_decodes_shared(&self) -> u64 {
        self.keyword_decodes_shared.load(Ordering::Relaxed)
    }

    /// Batched requests answered by prefix-slicing a same-keyword-set
    /// group's single max-`k` greedy run instead of running their own
    /// (the first member of each group runs; the rest are counted
    /// here).
    pub fn greedy_shared(&self) -> u64 {
        self.greedy_shared.load(Ordering::Relaxed)
    }

    /// Answer `req`, sharing work with concurrent requests: through the
    /// batch planner when a window is configured
    /// ([`QueryEngine::set_batch_window`]), otherwise by coalescing
    /// with any identical request currently in flight.
    ///
    /// Safe to call from any number of threads; the answer is
    /// bit-identical to running the same request alone.
    pub fn query(&self, req: &EngineRequest) -> EngineResult {
        self.query_deadline(req, None)
    }

    /// [`QueryEngine::query`] with a per-request absolute deadline: the
    /// request aborts with [`IndexError::DeadlineExceeded`] at the next
    /// stage boundary once `deadline` passes, never returning partial
    /// seeds.
    ///
    /// Deadlines do not join the coalescing identity — a request that
    /// coalesces onto an identical in-flight one shares the leader's
    /// fate, including the leader's deadline error. Inside a batch,
    /// duplicate requests execute once under the *widest* member
    /// deadline (unbounded if any duplicate is unbounded), and a
    /// keyword-set group's shared greedy run stops at the group's
    /// widest member deadline — if that fires, every member has
    /// expired.
    pub fn query_deadline(&self, req: &EngineRequest, deadline: Option<Instant>) -> EngineResult {
        match &self.batch {
            Some(batcher) => self.query_batched(batcher, req, deadline),
            None => self.query_coalesced(req, deadline),
        }
    }

    /// Answer a caller-assembled batch in one shared execution — the
    /// entry point for front ends that already hold a window of
    /// concurrent requests (the epoll event loop's fair dequeue) and
    /// need no admission window: the batch planner's condvar wait
    /// exists to *collect* concurrency, and a ready queue has already
    /// collected it.
    ///
    /// Results come back in request order, one per input. Sharing is
    /// identical to the planner's internal `run_batch`:
    /// duplicates execute once under the widest member deadline,
    /// same-keyword-set requests share one budget/decode/merge, and
    /// every answer is bit-identical to running its request alone. A
    /// panicking batch fails every slot, then re-throws — callers
    /// contain it the same way they contain
    /// [`query_deadline`](Self::query_deadline) panics.
    pub fn query_window(&self, requests: &[(EngineRequest, Option<Instant>)]) -> Vec<EngineResult> {
        let batch: Vec<(EngineRequest, Option<Instant>, Arc<Flight>)> = requests
            .iter()
            .map(|(req, deadline)| (req.clone(), *deadline, Arc::new(Flight::new())))
            .collect();
        if let Err(payload) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_batch(&batch)))
        {
            let err: EngineResult =
                Err(EngineError::from(IndexError::Corrupt("batch execution panicked".to_string())));
            for (_, _, flight) in &batch {
                flight.complete(err.clone());
            }
            std::panic::resume_unwind(payload);
        }
        // run_batch completes every flight synchronously, so these waits
        // never block.
        batch.iter().map(|(_, _, flight)| flight.wait()).collect()
    }

    /// The non-batched serving path: identical in-flight requests
    /// collapse to one execution.
    fn query_coalesced(&self, req: &EngineRequest, deadline: Option<Instant>) -> EngineResult {
        let flight = {
            let mut inflight = lock_recover(&self.inflight);
            if let Some(flight) = inflight.get(req) {
                let flight = Arc::clone(flight);
                drop(inflight);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                return flight.wait();
            }
            let flight = Arc::new(Flight::new());
            inflight.insert(req.clone(), Arc::clone(&flight));
            flight
        };

        // A panicking query (e.g. a corrupt-index assert deep in the IRR
        // path) must not wedge the flight: waiters would block forever
        // and every future identical request would coalesce onto the
        // dead entry. Catch, fail the flight, re-throw.
        let ctx = QueryCtx { deadline };
        let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.execute_ctx(req, &ctx)
        })) {
            Ok(result) => result,
            Err(payload) => {
                lock_recover(&self.inflight).remove(req);
                flight.complete(Err(EngineError::from(IndexError::Corrupt(
                    "query execution panicked".to_string(),
                ))));
                std::panic::resume_unwind(payload);
            }
        };
        self.executed.fetch_add(1, Ordering::Relaxed);
        lock_recover(&self.inflight).remove(req);
        flight.complete(result.clone());
        result
    }

    /// The batch-planner serving path: queue the request, collect
    /// concurrent arrivals for up to the admission window, execute the
    /// whole batch over one shared keyword decode.
    fn query_batched(
        &self,
        batcher: &Batcher,
        req: &EngineRequest,
        deadline: Option<Instant>,
    ) -> EngineResult {
        let flight = Arc::new(Flight::new());
        let leads = {
            let mut queue = lock_recover(&batcher.queue);
            queue.pending.push((req.clone(), deadline, Arc::clone(&flight)));
            if queue.collecting {
                // A leader is inside the admission window and will drain
                // this entry; wake it so it can fire early at the cap.
                batcher.arrived.notify_all();
                false
            } else {
                queue.collecting = true;
                true
            }
        };
        if !leads {
            return flight.wait();
        }

        // Leader: hold the admission window open, then drain. Entries
        // pushed after the drain see `collecting == false` and elect the
        // next leader, so no request is ever orphaned.
        //
        // The window is *adaptive*: it only opens once a second request
        // is already pending. A leader that finds itself alone drains
        // its singleton batch immediately — a solo client pays no
        // admission latency, so enabling batching never slows an
        // unloaded server. Under concurrency, later requests queue while
        // the current batch executes, so the next leader sees company
        // and the window engages exactly when there is sharing to
        // collect. Grouping never affects answers, only wall-clock.
        let deadline = Instant::now() + batcher.window;
        let batch = {
            let mut queue = lock_recover(&batcher.queue);
            if queue.pending.len() > 1 {
                while queue.pending.len() < batcher.max_requests {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    queue = batcher
                        .arrived
                        .wait_timeout(queue, left)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
            queue.collecting = false;
            std::mem::take(&mut queue.pending)
        };

        // As in the coalescing path: a panicking batch must not wedge
        // its waiters — fail every flight, then re-throw.
        if let Err(payload) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_batch(&batch)))
        {
            let err: EngineResult =
                Err(EngineError::from(IndexError::Corrupt("batch execution panicked".to_string())));
            for (_, _, flight) in &batch {
                flight.complete(err.clone());
            }
            std::panic::resume_unwind(payload);
        }
        flight.wait()
    }

    /// Execute one drained batch: dedupe identical requests, decode the
    /// union of distinct keywords once, serve every request from the
    /// shared arena, complete every flight.
    fn run_batch(&self, batch: &[(EngineRequest, Option<Instant>, Arc<Flight>)]) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(batch.len() as u64, Ordering::Relaxed);

        // With a delta tier attached, pin ONE union snapshot for the
        // whole batch: every member sees the same generation, concurrent
        // writers notwithstanding, and `serving` is the snapshot's live
        // base (the engine's own handle goes stale across flushes).
        let snap: Option<Arc<DeltaSnapshot>> = self.delta.as_ref().map(|d| d.snapshot());
        let serving: &KbtimIndex = snap.as_ref().map(|s| s.base().as_ref()).unwrap_or(&self.index);

        // Identical requests in one batch execute once (the batched
        // form of coalescing); order of first arrival is kept, though
        // answers are order-independent anyway. Duplicates share one
        // execution, governed by the widest member deadline (unbounded
        // if any duplicate is unbounded) — every duplicate shares that
        // execution's fate, as in the coalescing path.
        let mut unique: Vec<&EngineRequest> = Vec::with_capacity(batch.len());
        let mut deadlines: Vec<Option<Instant>> = Vec::with_capacity(batch.len());
        let mut slot: HashMap<&EngineRequest, usize> = HashMap::with_capacity(batch.len());
        for (req, deadline, _) in batch {
            match slot.get(req) {
                Some(&at) => {
                    deadlines[at] = match (deadlines[at], *deadline) {
                        (None, _) | (_, None) => None,
                        (Some(a), Some(b)) => Some(a.max(b)),
                    };
                }
                None => {
                    slot.insert(req, unique.len());
                    unique.push(req);
                    deadlines.push(*deadline);
                }
            }
        }

        // Group the disk requests by keyword set: the Eqn-11 budget and
        // the merged coverage instance depend on the topics alone, so
        // same-keyword-set requests (different `k`, different disk
        // algorithm) share one budget, one merge, and differ only in
        // their greedy. Memory requests are decode-free and pass
        // through unshared. The budget is computed once per group,
        // right here, and threaded through to the merge.
        struct Group<'a> {
            lead: &'a EngineRequest,
            members: Vec<usize>,
            phi_q: f64,
            budget: Vec<(TopicId, u64)>,
            /// Canonical (sorted, deduped) keyword set — the
            /// prepared-query cache key.
            key: Vec<TopicId>,
            /// Cache-resolved merged instance, probed before the union
            /// decode: a hit removes the group from the decode *and*
            /// the merge.
            cached: Option<Arc<MergedQuery>>,
            /// Widest member deadline (unbounded if any member is):
            /// the stop hook of the group's shared greedy run — if it
            /// fires, every member has expired.
            deadline: Option<Instant>,
        }
        let mut groups: Vec<Group<'_>> = Vec::new();
        for (at, req) in unique.iter().enumerate() {
            // Memory requests are decode-free only without a delta tier;
            // with one attached they join the union groups like every
            // other algorithm (the RAM copy would be stale).
            if req.algo == Algo::Memory && snap.is_none() {
                continue;
            }
            match groups.iter_mut().find(|g| g.lead.topics == req.topics) {
                Some(group) => {
                    group.deadline = match (group.deadline, deadlines[at]) {
                        (None, _) | (_, None) => None,
                        (Some(a), Some(b)) => Some(a.max(b)),
                    };
                    group.members.push(at);
                }
                None => {
                    let query = Query::new(req.topics.iter().copied(), req.k);
                    let (phi_q, budget) = match &snap {
                        Some(s) => s.query_budget(&query),
                        None => self.index.query_budget(&query),
                    };
                    let key = query.topics().to_vec();
                    groups.push(Group {
                        lead: req,
                        members: vec![at],
                        phi_q,
                        budget,
                        key,
                        cached: None,
                        deadline: deadlines[at],
                    });
                }
            }
        }
        // Cache identity: the base segment generation XOR the (mixed)
        // delta generation — bumped by every applied batch and every
        // flush, so no prepared instance survives a mutation.
        let fingerprint = match &snap {
            Some(s) => s.base().segment_fingerprint() ^ delta::splitmix64(s.generation()),
            None => self.index.segment_fingerprint(),
        };
        if let Some(cache) = &self.merge_cache {
            for group in &mut groups {
                group.cached = cache.get(fingerprint, &group.key);
            }
        }

        // Union of budgeted keywords across all groups, each at the
        // widest per-request share, decoded once for the whole batch.
        // Every member of a group would have needed its group's whole
        // keyword set — the `requested` side of the sharing books.
        // Cache-served groups need no decode at all, so they join
        // neither side of the union.
        let mut wants: BTreeMap<TopicId, u64> = BTreeMap::new();
        let mut requested = 0u64;
        for group in groups.iter().filter(|g| g.cached.is_none()) {
            requested += (group.budget.len() * group.members.len()) as u64;
            for &(topic, share) in &group.budget {
                let widest = wants.entry(topic).or_insert(0);
                *widest = (*widest).max(share);
            }
        }
        let wants: Vec<(TopicId, u64)> = wants.into_iter().collect();

        // Execute: memory requests directly on the leader (RAM-only,
        // decode-free), each keyword-set group over one shared merge.
        // `Auto` needs no cost-model pick against a merged instance —
        // both branches serve from the same structure (Theorem 3) —
        // and `Irr` keeps its variant check so batched error behavior
        // matches `execute`.
        let mut results: Vec<Option<EngineResult>> = vec![None; unique.len()];
        if snap.is_none() {
            for (at, req) in unique.iter().enumerate() {
                if req.algo == Algo::Memory {
                    self.executed.fetch_add(1, Ordering::Relaxed);
                    results[at] =
                        Some(self.execute_ctx(req, &QueryCtx { deadline: deadlines[at] }));
                }
            }
        }
        let run_group = |group: &Group<'_>, arena: &KeywordArena| -> Vec<(usize, EngineResult)> {
            let variant = match &snap {
                Some(s) => s.meta().variant,
                None => self.index.meta().variant,
            };
            let irr_available = matches!(variant, crate::format::IndexVariant::Irr { .. });
            // Resolve the merged instance: a cache hit reuses the shared
            // Arc; a miss merges from the batch arena and (with a cache
            // configured) publishes the result for later batches.
            let merged: Arc<MergedQuery> = match &group.cached {
                Some(merged) => Arc::clone(merged),
                None => {
                    self.merged_groups.fetch_add(1, Ordering::Relaxed);
                    // The union's |V| (base plus ingested users) sizes
                    // the merged instance when a delta is pinned.
                    let num_users = match &snap {
                        Some(s) => s.meta().num_users,
                        None => serving.meta().num_users,
                    };
                    match serving.merge_budgeted_over(num_users, group.phi_q, &group.budget, arena)
                    {
                        Ok(merged) => {
                            let merged = Arc::new(merged);
                            if let Some(cache) = &self.merge_cache {
                                cache.insert(fingerprint, group.key.clone(), Arc::clone(&merged));
                            }
                            merged
                        }
                        Err(e) => {
                            let err = EngineError::from(e);
                            self.executed.fetch_add(group.members.len() as u64, Ordering::Relaxed);
                            return group
                                .members
                                .iter()
                                .map(|&at| (at, Err(err.clone())))
                                .collect();
                        }
                    }
                }
            };
            // One greedy run at the group's deepest `k` serves every
            // member: seeds are selected sequentially, so each member's
            // answer is exactly the `k`-prefix of the deep run (see
            // [`MergedQuery::prefix_outcome`]). The run stops at the
            // group's widest member deadline; a stop means every member
            // expired, so the whole group fails with the deadline error
            // (no partial seeds escape).
            let k_max = group.members.iter().map(|&at| unique[at].k).max().unwrap_or(0);
            let group_ctx = QueryCtx { deadline: group.deadline };
            let full = match serving.query_merged_ctx(&merged, k_max, &group_ctx) {
                Ok(full) => Arc::new(full),
                Err(e) => {
                    let err = EngineError::from(e);
                    self.executed.fetch_add(group.members.len() as u64, Ordering::Relaxed);
                    let out: Vec<(usize, EngineResult)> =
                        group.members.iter().map(|&at| (at, Err(err.clone()))).collect();
                    if let Ok(sole) = Arc::try_unwrap(merged) {
                        serving.recycle_merged(sole);
                    }
                    return out;
                }
            };
            if group.members.len() > 1 {
                self.greedy_shared.fetch_add(group.members.len() as u64 - 1, Ordering::Relaxed);
            }
            let out: Vec<(usize, EngineResult)> = group
                .members
                .iter()
                .map(|&at| {
                    self.executed.fetch_add(1, Ordering::Relaxed);
                    let req = unique[at];
                    let result = if req.algo == Algo::Irr && !irr_available {
                        Err(EngineError::from(IndexError::NotAnIrrIndex))
                    } else if group.members.len() == 1 {
                        Ok(Arc::clone(&full))
                    } else {
                        Ok(Arc::new(merged.prefix_outcome(&full, req.k)))
                    };
                    (at, result)
                })
                .collect();
            // Sole owner (cache off, or the entry was already evicted
            // and nobody else holds it) → the arenas recycle as before;
            // otherwise the cache keeps the instance alive for the next
            // hit and the Arc simply drops.
            if let Ok(sole) = Arc::try_unwrap(merged) {
                serving.recycle_merged(sole);
            }
            out
        };

        let union_arena = if wants.is_empty() {
            Ok(KeywordArena::default())
        } else {
            match &snap {
                Some(s) => s.decode_union(&wants),
                None => self.index.decode_keywords(&wants),
            }
        };
        match union_arena {
            Ok(arena) => {
                self.keywords_decoded.fetch_add(wants.len() as u64, Ordering::Relaxed);
                self.keyword_decodes_shared
                    .fetch_add(requested.saturating_sub(wants.len() as u64), Ordering::Relaxed);
                // Group answers are independent, so groups fan out on
                // the index's persistent exec pool: without this, a
                // batch of G disjoint keyword sets would serialize on
                // the leader thread work that the per-request path ran
                // G-wide on the client threads now parked in
                // `Flight::wait`. Nested parallel recounts inside
                // `query_merged` degrade to inline execution on the
                // occupied pool, so the fan-out can never deadlock;
                // answers are unaffected either way — only wall-clock.
                if groups.len() <= 1 {
                    for group in &groups {
                        for (at, result) in run_group(group, &arena) {
                            results[at] = Some(result);
                        }
                    }
                } else {
                    let per_group =
                        serving.pool().map_shards(groups.len(), |i| run_group(&groups[i], &arena));
                    for group_results in per_group {
                        for (at, result) in group_results {
                            results[at] = Some(result);
                        }
                    }
                }
                serving.recycle_keywords(arena);
            }
            Err(_) => {
                // The union decode hit an unreadable keyword. Answers
                // must not depend on which unrelated requests share a
                // window, so retry *per group*: groups whose own
                // keywords are healthy still get their serial answers;
                // only groups referencing the failed keyword(s) see the
                // error — exactly the per-request semantics. (Memory
                // requests were already served above; cache-served
                // groups never needed the decode, so they are served
                // straight from their cached instance.)
                for group in &groups {
                    if group.cached.is_some() {
                        for (at, result) in run_group(group, &KeywordArena::default()) {
                            results[at] = Some(result);
                        }
                        continue;
                    }
                    let mut group_wants: BTreeMap<TopicId, u64> = BTreeMap::new();
                    for &(topic, share) in &group.budget {
                        let widest = group_wants.entry(topic).or_insert(0);
                        *widest = (*widest).max(share);
                    }
                    let group_wants: Vec<(TopicId, u64)> = group_wants.into_iter().collect();
                    let retried = match &snap {
                        Some(s) => s.decode_union(&group_wants),
                        None => self.index.decode_keywords(&group_wants),
                    };
                    match retried {
                        Ok(arena) => {
                            self.keywords_decoded
                                .fetch_add(group_wants.len() as u64, Ordering::Relaxed);
                            for (at, result) in run_group(group, &arena) {
                                results[at] = Some(result);
                            }
                            serving.recycle_keywords(arena);
                        }
                        Err(e) => {
                            let err = EngineError::from(e);
                            self.executed.fetch_add(group.members.len() as u64, Ordering::Relaxed);
                            for &at in &group.members {
                                results[at] = Some(Err(err.clone()));
                            }
                        }
                    }
                }
            }
        }
        self.coalesced.fetch_add((batch.len() - unique.len()) as u64, Ordering::Relaxed);
        for (req, _, flight) in batch {
            let result = results[slot[req]].clone().expect("every unique request executed");
            flight.complete(result);
        }
    }

    /// Run the request directly, bypassing coalescing and batching (the
    /// serial-oracle path benchmarks and proptests compare against).
    pub fn execute(&self, req: &EngineRequest) -> EngineResult {
        self.execute_ctx(req, &QueryCtx::default())
    }

    /// [`QueryEngine::execute`] under an execution context (see
    /// [`QueryCtx`]): the deadline is enforced at the index's stage
    /// boundaries; memory queries check it once on entry (they are
    /// decode-free and run in microseconds).
    pub fn execute_ctx(&self, req: &EngineRequest, ctx: &QueryCtx) -> EngineResult {
        let query = Query::new(req.topics.iter().copied(), req.k);
        // A delta tier routes every algorithm through one pinned union
        // snapshot: base handles and RAM copies captured at engine build
        // go stale the moment a mutation lands, and the per-algo
        // bit-identity invariants survive because all four serve from
        // the same union decode. Variant errors keep per-algo semantics.
        if let Some(delta) = &self.delta {
            let snap = delta.snapshot();
            if req.algo == Algo::Irr
                && !matches!(snap.meta().variant, crate::format::IndexVariant::Irr { .. })
            {
                return Err(EngineError::from(IndexError::NotAnIrrIndex));
            }
            return Ok(Arc::new(snap.query_ctx(&query, ctx)?));
        }
        let outcome = match req.algo {
            Algo::Rr => self.index.query_rr_ctx(&query, ctx)?,
            Algo::Irr => self.index.query_irr_ctx(&query, ctx)?,
            Algo::Auto => self.index.query_auto_ctx(&query, ctx)?,
            Algo::Memory => match &self.memory {
                Some(memory) => {
                    ctx.check()?;
                    memory.query(&query)
                }
                None => {
                    return Err(EngineError::from(IndexError::Corrupt(
                        "engine was built without a memory serving copy \
                         (use QueryEngine::with_memory)"
                            .to_string(),
                    )))
                }
            },
        };
        Ok(Arc::new(outcome))
    }
}

// The serving runtime's foundation: one index, one engine, any number of
// client threads. A compile error here means a field regressed to a
// non-thread-safe type.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<KbtimIndex>();
    assert_send_sync::<MemoryIndex>();
    assert_send_sync::<QueryEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{IndexBuildConfig, IndexBuilder};
    use crate::format::IndexVariant;
    use kbtim_core::theta::SamplingConfig;
    use kbtim_datagen::{DatasetConfig, DatasetFamily};
    use kbtim_propagation::model::IcModel;
    use kbtim_storage::{IoStats, TempDir};

    fn build_engine(dir: &std::path::Path) -> QueryEngine {
        let data = DatasetConfig::family(DatasetFamily::News)
            .num_users(400)
            .num_topics(6)
            .seed(91)
            .build();
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(1_000),
                opt_initial_samples: 64,
                opt_max_rounds: 5,
                ..SamplingConfig::fast()
            },
            variant: IndexVariant::Irr { partition_size: 20 },
            ..IndexBuildConfig::default()
        };
        IndexBuilder::new(&model, &data.profiles, config).build(dir).unwrap();
        let index = Arc::new(KbtimIndex::open(dir, IoStats::new()).unwrap());
        QueryEngine::with_memory(index).unwrap()
    }

    #[test]
    fn engine_matches_direct_queries() {
        let dir = TempDir::new("engine-direct").unwrap();
        let engine = build_engine(dir.path());
        let query = Query::new([0u32, 1], 8);
        let direct_rr = engine.index().query_rr(&query).unwrap();
        let direct_irr = engine.index().query_irr(&query).unwrap();
        for (algo, want) in
            [(Algo::Rr, &direct_rr), (Algo::Irr, &direct_irr), (Algo::Memory, &direct_rr)]
        {
            let got = engine.query(&EngineRequest::new([0, 1], 8).with_algo(algo)).unwrap();
            assert_eq!(got.seeds, want.seeds, "{algo}");
            assert_eq!(got.coverage, want.coverage, "{algo}");
        }
    }

    #[test]
    fn concurrent_identical_requests_share_one_answer() {
        let dir = TempDir::new("engine-coalesce").unwrap();
        let engine = Arc::new(build_engine(dir.path()));
        let req = EngineRequest::new([0, 1, 2], 10).with_algo(Algo::Rr);
        let serial = engine.execute(&req).unwrap();
        let issued = 16;

        let barrier = std::sync::Barrier::new(issued);
        std::thread::scope(|scope| {
            let joins: Vec<_> = (0..issued)
                .map(|_| {
                    let engine = Arc::clone(&engine);
                    let req = req.clone();
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        engine.query(&req).unwrap()
                    })
                })
                .collect();
            for join in joins {
                let got = join.join().unwrap();
                assert_eq!(got.seeds, serial.seeds);
                assert_eq!(got.marginal_gains, serial.marginal_gains);
            }
        });
        // Every request is either executed or coalesced; how many
        // coalesce depends on timing, but the books must balance (the
        // serial oracle went through `execute`, which never counts).
        assert_eq!(engine.executed() + engine.coalesced(), issued as u64);
        assert!(engine.executed() >= 1);
    }

    #[test]
    fn memory_without_loading_is_an_error() {
        let dir = TempDir::new("engine-nomem").unwrap();
        let engine = build_engine(dir.path());
        let index = Arc::clone(engine.index());
        let bare = QueryEngine::new(index);
        assert!(!bare.has_memory());
        let err = bare.query(&EngineRequest::new([0], 3).with_algo(Algo::Memory)).unwrap_err();
        assert!(err.to_string().contains("memory serving copy"), "{err}");
    }

    #[test]
    fn prepared_entries_match_unbatched_queries() {
        let dir = TempDir::new("prepared-entries").unwrap();
        let engine = build_engine(dir.path());
        let index = engine.index();
        for query in [Query::new([0u32, 1, 2], 9), Query::new([3u32], 4)] {
            let mut wants: std::collections::BTreeMap<u32, u64> = Default::default();
            for (topic, share) in index.query_budget(&query).1 {
                let widest = wants.entry(topic).or_insert(0);
                *widest = (*widest).max(share);
            }
            let wants: Vec<(u32, u64)> = wants.into_iter().collect();
            let arena = index.decode_keywords(&wants).unwrap();

            let rr = index.query_rr(&query).unwrap();
            let rr_p = index.query_rr_prepared(&query, &arena).unwrap();
            assert_eq!(rr_p.seeds, rr.seeds);
            assert_eq!(rr_p.marginal_gains, rr.marginal_gains);
            assert_eq!(rr_p.coverage, rr.coverage);
            assert_eq!(rr_p.stats.theta_q, rr.stats.theta_q);
            assert_eq!(rr_p.estimated_influence.to_bits(), rr.estimated_influence.to_bits());

            let irr = index.query_irr(&query).unwrap();
            let irr_p = index.query_irr_prepared(&query, &arena).unwrap();
            assert_eq!(irr_p.seeds, irr.seeds);
            assert_eq!(irr_p.marginal_gains, irr.marginal_gains);
            assert_eq!(irr_p.coverage, irr.coverage);

            assert_eq!(arena.len(), wants.len());
            assert!(arena.rr_sets_decoded() > 0);
            index.recycle_keywords(arena);
        }
    }

    #[test]
    fn irr_prepared_requires_the_irr_variant() {
        let data = DatasetConfig::family(DatasetFamily::News)
            .num_users(300)
            .num_topics(4)
            .seed(93)
            .build();
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(500),
                opt_initial_samples: 64,
                opt_max_rounds: 4,
                ..SamplingConfig::fast()
            },
            variant: IndexVariant::Rr,
            ..IndexBuildConfig::default()
        };
        let dir = TempDir::new("prepared-rr-variant").unwrap();
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
        let index = KbtimIndex::open(dir.path(), IoStats::new()).unwrap();
        let query = Query::new([0u32], 3);
        let wants: Vec<(u32, u64)> = index.query_budget(&query).1;
        let arena = index.decode_keywords(&wants).unwrap();
        assert!(matches!(
            index.query_irr_prepared(&query, &arena).unwrap_err(),
            crate::IndexError::NotAnIrrIndex
        ));
        // The RR entry still serves an RR-variant index from the arena.
        assert_eq!(
            index.query_rr_prepared(&query, &arena).unwrap().seeds,
            index.query_rr(&query).unwrap().seeds
        );
        index.recycle_keywords(arena);
    }

    #[test]
    fn batched_engine_matches_serial_execution() {
        let dir = TempDir::new("engine-batch").unwrap();
        let engine = build_engine(dir.path()).with_batch_window(Some(Duration::from_micros(200)));
        let reqs = [
            EngineRequest::new([0, 1], 4).with_algo(Algo::Rr),
            EngineRequest::new([0, 1], 9).with_algo(Algo::Irr),
            EngineRequest::new([1, 2], 6).with_algo(Algo::Auto),
            EngineRequest::new([0, 1], 4).with_algo(Algo::Memory),
            EngineRequest::new([4], 3).with_algo(Algo::Rr),
        ];
        for req in &reqs {
            let serial = engine.execute(req).unwrap();
            let batched = engine.query(req).unwrap();
            assert_eq!(batched.seeds, serial.seeds, "{req:?}");
            assert_eq!(batched.marginal_gains, serial.marginal_gains, "{req:?}");
            assert_eq!(batched.coverage, serial.coverage, "{req:?}");
            assert_eq!(batched.stats.theta_q, serial.stats.theta_q, "{req:?}");
            assert!(
                (batched.estimated_influence - serial.estimated_influence).abs() < 1e-12,
                "{req:?}"
            );
        }
        // Each query() above formed its own (singleton) batch; the books
        // must say so, and sharing never triggers with one request.
        assert_eq!(engine.batches(), reqs.len() as u64);
        assert_eq!(engine.batched_requests(), reqs.len() as u64);
        assert!(engine.batch_window().is_some());
    }

    #[test]
    fn batched_memory_requests_survive_disk_decode_failure() {
        let dir = TempDir::new("engine-batch-corrupt").unwrap();
        let engine =
            Arc::new(build_engine(dir.path()).with_batch_window(Some(Duration::from_millis(300))));
        let mem_req = EngineRequest::new([0, 1], 4).with_algo(Algo::Memory);
        let rr_req = EngineRequest::new([0, 1], 4).with_algo(Algo::Rr);
        let mem_serial = engine.execute(&mem_req).unwrap();

        // Truncate a keyword segment the rr request needs. The memory
        // copy was loaded at engine build, so only disk reads break.
        std::fs::write(dir.path().join(crate::format::keyword_file_name(0)), b"x").unwrap();

        // Fire both into (almost surely) one batch: the rr request must
        // fail on the shared decode, the memory request must still be
        // served from RAM — exactly as the per-request path would
        // behave. (If timing splits them into two batches, the same
        // assertions hold: a memory-only batch decodes nothing.)
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            let rr = scope.spawn(|| {
                barrier.wait();
                engine.query(&rr_req)
            });
            let mem = scope.spawn(|| {
                barrier.wait();
                engine.query(&mem_req)
            });
            assert!(rr.join().unwrap().is_err(), "disk request must surface the corrupt segment");
            let mem = mem.join().unwrap().expect("memory request must survive the batch");
            assert_eq!(mem.seeds, mem_serial.seeds);
            assert_eq!(mem.marginal_gains, mem_serial.marginal_gains);
        });
        // `execute` (the oracle) bypasses the books; the two batched
        // clients must balance them.
        assert_eq!(engine.executed() + engine.coalesced(), 2);
    }

    #[test]
    fn batched_requests_fail_only_groups_touching_corrupt_keywords() {
        let dir = TempDir::new("engine-batch-partial-corrupt").unwrap();
        let engine =
            Arc::new(build_engine(dir.path()).with_batch_window(Some(Duration::from_millis(300))));
        let healthy = EngineRequest::new([0, 1], 5).with_algo(Algo::Rr);
        let doomed = EngineRequest::new([3], 4).with_algo(Algo::Rr);
        let healthy_serial = engine.execute(&healthy).unwrap();

        // Corrupt only keyword 3's segment; [0, 1] stay readable.
        std::fs::write(dir.path().join(crate::format::keyword_file_name(3)), b"x").unwrap();

        // Both (almost surely) in one batch: the union decode fails on
        // keyword 3, but the healthy group's answer must not depend on
        // its batch-mates — it gets its serial result, only the group
        // referencing the corrupt keyword errors.
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            let ok = scope.spawn(|| {
                barrier.wait();
                engine.query(&healthy)
            });
            let bad = scope.spawn(|| {
                barrier.wait();
                engine.query(&doomed)
            });
            assert!(bad.join().unwrap().is_err(), "corrupt-keyword group must error");
            let got = ok.join().unwrap().expect("healthy group must survive the batch");
            assert_eq!(got.seeds, healthy_serial.seeds);
            assert_eq!(got.marginal_gains, healthy_serial.marginal_gains);
        });
        assert_eq!(engine.executed() + engine.coalesced(), 2);
    }

    #[test]
    fn decode_keywords_normalizes_unsorted_wants() {
        let dir = TempDir::new("engine-unsorted-wants").unwrap();
        let engine = build_engine(dir.path());
        let index = engine.index();
        let query = Query::new([0u32, 1, 2], 6);
        let oracle = index.query_rr(&query).unwrap();
        // Reversed and with a duplicate at a smaller share: the arena
        // must still come out strictly ascending with the widest share.
        let sorted: Vec<(u32, u64)> = index.query_budget(&query).1;
        let mut scrambled: Vec<(u32, u64)> = sorted.iter().rev().copied().collect();
        scrambled.push((sorted[0].0, 1));
        let arena = index.decode_keywords(&scrambled).unwrap();
        assert_eq!(arena.len(), sorted.len());
        let got = index.query_rr_prepared(&query, &arena).unwrap();
        assert_eq!(got.seeds, oracle.seeds);
        assert_eq!(got.coverage, oracle.coverage);
        index.recycle_keywords(arena);
    }

    #[test]
    fn concurrent_batch_shares_keyword_decodes() {
        let dir = TempDir::new("engine-batch-share").unwrap();
        let engine =
            Arc::new(build_engine(dir.path()).with_batch_window(Some(Duration::from_millis(250))));
        // Six *distinct* requests over the same two keywords: identical
        // coalescing can't help, only the planner's shared decode can.
        let reqs: Vec<EngineRequest> =
            (0..6).map(|i| EngineRequest::new([0, 1], 3 + i as u32).with_algo(Algo::Rr)).collect();
        let serial: Vec<_> = reqs.iter().map(|r| engine.execute(r).unwrap()).collect();

        // Deterministically build one multi-request batch: park the
        // planner by pretending a leader is collecting, enqueue every
        // client as a follower, then release leadership to a final
        // request that drains them all at once. (A plain barrier race
        // can serialize on a single-CPU host — each solo leader drains
        // immediately under the adaptive window — leaving no sharing
        // to observe.)
        engine.hold_admission(true);
        std::thread::scope(|scope| {
            let joins: Vec<_> = reqs
                .iter()
                .map(|req| {
                    let engine = Arc::clone(&engine);
                    scope.spawn(move || engine.query(req).unwrap())
                })
                .collect();
            while engine.pending_admission() < reqs.len() {
                std::thread::yield_now();
            }
            engine.hold_admission(false);
            // The 7th request elects itself leader, finds six pending,
            // and collects them (plus its own duplicate of reqs[0],
            // which coalesces in-batch) into one execution.
            let extra = engine.query(&reqs[0]).unwrap();
            assert_eq!(extra.seeds, serial[0].seeds);
            for (join, want) in joins.into_iter().zip(&serial) {
                let got = join.join().unwrap();
                assert_eq!(got.seeds, want.seeds);
                assert_eq!(got.marginal_gains, want.marginal_gains);
            }
        });
        // One batch of 7 requests, 6 unique, one keyword-set group:
        // every unique request would have decoded 2 keywords (12
        // requested) but the planner decoded each distinct keyword
        // once.
        assert_eq!(engine.batched_requests(), reqs.len() as u64 + 1);
        assert!(
            engine.keyword_decodes_shared() > 0,
            "concurrent same-keyword requests must share decodes \
             ({} batches, {} decoded)",
            engine.batches(),
            engine.keywords_decoded()
        );
        // The group's six members shared one max-k greedy run.
        assert_eq!(engine.greedy_shared(), reqs.len() as u64 - 1);
        assert_eq!(engine.executed() + engine.coalesced(), reqs.len() as u64 + 1);
    }

    #[test]
    fn merge_cache_hits_skip_decode_and_match_uncached() {
        let dir = TempDir::new("engine-merge-cache").unwrap();
        let engine = build_engine(dir.path())
            .with_batch_window(Some(Duration::from_micros(100)))
            .with_merge_cache(4);
        assert_eq!(engine.merge_cache_capacity(), 4);

        // Round 1 over two keyword sets: every set misses and decodes.
        let reqs = [EngineRequest::new([0, 1], 6).with_algo(Algo::Rr), EngineRequest::new([2], 4)];
        let serial: Vec<_> = reqs.iter().map(|r| engine.execute(r).unwrap()).collect();
        for (req, want) in reqs.iter().zip(&serial) {
            let got = engine.query(req).unwrap();
            assert_eq!(got.seeds, want.seeds);
            assert_eq!(got.marginal_gains, want.marginal_gains);
        }
        let decoded_after_first = engine.keywords_decoded();
        assert!(decoded_after_first > 0);
        assert_eq!(engine.merge_cache_misses(), 2);
        assert_eq!(engine.merge_cache_len(), 2);
        assert!(engine.merge_cache_bytes() > 0);

        // Hot rounds: same keyword sets (varying k — the cached instance
        // is k-independent) hit the cache; the decode books stay flat
        // while requests keep flowing, and every answer still matches
        // the uncached serial oracle bit for bit.
        for round in 0..4u32 {
            for req in &reqs {
                let hot = EngineRequest { k: req.k + round, ..req.clone() };
                let want = engine.execute(&hot).unwrap();
                let got = engine.query(&hot).unwrap();
                assert_eq!(got.seeds, want.seeds, "{hot:?}");
                assert_eq!(got.marginal_gains, want.marginal_gains, "{hot:?}");
                assert_eq!(got.coverage, want.coverage, "{hot:?}");
                assert_eq!(
                    got.estimated_influence.to_bits(),
                    want.estimated_influence.to_bits(),
                    "{hot:?}"
                );
            }
        }
        assert_eq!(
            engine.keywords_decoded(),
            decoded_after_first,
            "cache hits must not decode keywords"
        );
        assert_eq!(engine.merge_cache_hits(), 8);
        assert_eq!(engine.merge_cache_misses(), 2);
        assert_eq!(engine.merge_cache_evictions(), 0);
    }

    #[test]
    fn merge_cache_evicts_lru_and_keeps_books() {
        let dir = TempDir::new("engine-merge-evict").unwrap();
        let engine = build_engine(dir.path())
            .with_batch_window(Some(Duration::from_micros(100)))
            .with_merge_cache(1);
        let a = EngineRequest::new([0, 1], 5).with_algo(Algo::Rr);
        let b = EngineRequest::new([2, 3], 5).with_algo(Algo::Rr);
        let serial_a = engine.execute(&a).unwrap();

        engine.query(&a).unwrap(); // miss, insert {0,1}
        let bytes_a = engine.merge_cache_bytes();
        assert!(bytes_a > 0);
        engine.query(&b).unwrap(); // miss, insert {2,3} -> evicts {0,1}
        assert_eq!(engine.merge_cache_evictions(), 1);
        assert_eq!(engine.merge_cache_len(), 1, "capacity 1 holds one entry");
        // The evicted set misses again — and still answers correctly.
        let got = engine.query(&a).unwrap();
        assert_eq!(got.seeds, serial_a.seeds);
        assert_eq!(engine.merge_cache_misses(), 3);
        assert_eq!(engine.merge_cache_hits(), 0);
        assert_eq!(engine.merge_cache_evictions(), 2);
        // Bytes track the single resident entry, not the history.
        assert!(engine.merge_cache_bytes() > 0);
    }

    #[test]
    fn adaptive_window_drains_solo_leaders_immediately() {
        let dir = TempDir::new("engine-adaptive").unwrap();
        // A window far longer than the test budget: if a solo batched
        // request waited the window out, this test would hang for 30s.
        let engine = build_engine(dir.path()).with_batch_window(Some(Duration::from_secs(30)));
        let req = EngineRequest::new([0, 1], 5).with_algo(Algo::Rr);
        let want = engine.execute(&req).unwrap();
        let started = std::time::Instant::now();
        let got = engine.query(&req).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "solo leader must not hold the admission window open"
        );
        assert_eq!(got.seeds, want.seeds);
        assert_eq!(engine.batches(), 1);
    }

    #[test]
    fn segment_fingerprint_tracks_index_generation() {
        let data = DatasetConfig::family(DatasetFamily::News)
            .num_users(300)
            .num_topics(4)
            .seed(97)
            .build();
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(400),
                opt_initial_samples: 64,
                opt_max_rounds: 4,
                ..SamplingConfig::fast()
            },
            ..IndexBuildConfig::default()
        };
        let dir = TempDir::new("engine-fingerprint").unwrap();
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
        let first = KbtimIndex::open(dir.path(), IoStats::new()).unwrap().segment_fingerprint();
        let again = KbtimIndex::open(dir.path(), IoStats::new()).unwrap().segment_fingerprint();
        assert_eq!(first, again, "same on-disk generation must agree");

        // Rebuild in place with a different sample budget: segment
        // lengths (and mtimes) change, so the identity must too — a
        // prepared-query cache keyed by it can never serve entries
        // across generations.
        let rebuilt_config = IndexBuildConfig {
            sampling: SamplingConfig { theta_cap: Some(700), ..config.sampling },
            ..config
        };
        IndexBuilder::new(&model, &data.profiles, rebuilt_config).build(dir.path()).unwrap();
        let rebuilt = KbtimIndex::open(dir.path(), IoStats::new()).unwrap().segment_fingerprint();
        assert_ne!(first, rebuilt, "rebuilt segments must change the fingerprint");
    }

    #[test]
    fn algo_parse_roundtrip() {
        for algo in [Algo::Rr, Algo::Irr, Algo::Auto, Algo::Memory] {
            assert_eq!(Algo::parse(algo.name()), Some(algo));
        }
        assert_eq!(Algo::parse("bogus"), None);
        assert_eq!(Algo::default(), Algo::Auto);
    }
}
