//! Line-delimited JSON protocol of `kbtim serve` — the normative
//! specification lives in `docs/PROTOCOL.md`; this module implements it.
//!
//! One request per line in, one response per line out — over stdin/stdout
//! or a TCP connection, the same bytes either way. The protocol is
//! deliberately small and self-contained (the workspace vendors no JSON
//! crate, so a subset parser lives here):
//!
//! ```text
//! → {"id": 7, "index": "sports", "topics": [0, 1], "k": 10, "algo": "irr"}
//! ← {"id":7,"index":"sports","algo":"irr","seeds":[83,411],
//!    "marginal_gains":[52,40],"coverage":92,"estimated_influence":14.25,
//!    "theta_q":1800,"rr_sets_loaded":240,"elapsed_us":913}
//! ```
//!
//! Request fields: `topics` (array of topic ids, required), `k` (seed
//! count, default 10), `algo` (`rr` / `irr` / `auto` / `memory`, default
//! `auto`), `index` (which served index answers, default the server's
//! first — see [`Router`]), `id` (optional echo token for matching
//! responses to pipelined requests). Unknown fields are rejected — a
//! typo'd `"indx"` must fail loudly, not route to the default index.
//!
//! Errors come back on the same line protocol as structured objects:
//! `{"id":7,"error":"...","code":"unknown_field"}` — `code` is a stable
//! machine-readable discriminant (see [`ServeError`]), `error` the
//! human-readable message. A malformed line never kills the connection.

use kbtim_index::{Algo, EngineRequest, QueryEngine, QueryOutcome};
use std::sync::Arc;

/// A parsed JSON value (the subset the protocol needs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as f64 (ids and counts fit exactly).
    Num(f64),
    /// A (de-escaped) string.
    Str(String),
    /// An array of values.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs (duplicate keys rejected at
    /// parse time).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON value; trailing non-whitespace is an
    /// error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), at: 0 };
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.at));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer that fits `u64` exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.at).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.at))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected {:?} at offset {}", other as char, self.at)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while let Some(&b) = self.bytes.get(self.at) {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.at += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii digits");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.at) else {
                return Err("unterminated string".to_string());
            };
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.at) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            self.at += 4;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // Surrogates (rare in topic queries) are
                            // replaced rather than paired — the protocol
                            // carries no user text where this matters.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.at - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or("invalid utf-8 in string")?;
                    out.push_str(chunk);
                    self.at = start + len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.at += 1,
                b']' => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {:?}", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        if self.peek()? == b'}' {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.at += 1,
                b'}' => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {:?}", other as char)),
            }
        }
    }
}

/// Escape a string for embedding in a JSON response.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A structured protocol error: a stable machine-readable `code` plus a
/// human-readable `message`, rendered as
/// `{"error":"<message>","code":"<code>"}`.
///
/// Codes (normative list in `docs/PROTOCOL.md`):
///
/// * `parse_error` — the line is not valid JSON;
/// * `unknown_field` — the request object carries a top-level key the
///   protocol does not define (typo guard: `"indx"` fails loudly);
/// * `bad_request` — a defined field has the wrong type or an invalid
///   value (missing `topics`, zero `k`, unknown `algo`, …);
/// * `unknown_index` — the `index` field names no served index;
/// * `engine_error` — the query itself failed inside the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Stable machine-readable discriminant (`snake_case`).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl ServeError {
    fn parse(message: impl Into<String>) -> ServeError {
        ServeError { code: "parse_error", message: message.into() }
    }

    fn bad(message: impl Into<String>) -> ServeError {
        ServeError { code: "bad_request", message: message.into() }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.code)
    }
}

impl std::error::Error for ServeError {}

/// A parsed serve request: the engine request plus the client's routing
/// and echo fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Echoed back verbatim in the response, if given.
    pub id: Option<u64>,
    /// Which served index answers (echoed back); `None` routes to the
    /// server's default (first) index.
    pub index: Option<String>,
    /// The query to run.
    pub request: EngineRequest,
}

impl ServeRequest {
    /// Parse one protocol line.
    pub fn parse(line: &str) -> Result<ServeRequest, ServeError> {
        let json = Json::parse(line).map_err(ServeError::parse)?;
        let Json::Obj(fields) = &json else {
            return Err(ServeError::bad("request must be a JSON object"));
        };
        for (key, _) in fields {
            if !matches!(key.as_str(), "id" | "index" | "topics" | "k" | "algo") {
                return Err(ServeError {
                    code: "unknown_field",
                    message: format!("unknown field {key:?}"),
                });
            }
        }
        let id = match json.get("id") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| ServeError::bad("\"id\" must be a non-negative integer"))?,
            ),
        };
        let index = match json.get("index") {
            None => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(ServeError::bad("\"index\" must be a string")),
        };
        let topics_json =
            json.get("topics").ok_or_else(|| ServeError::bad("missing \"topics\""))?;
        let Json::Arr(items) = topics_json else {
            return Err(ServeError::bad("\"topics\" must be an array"));
        };
        let mut topics = Vec::with_capacity(items.len());
        for item in items {
            let id = item.as_u64().filter(|&t| t <= u32::MAX as u64);
            topics
                .push(id.ok_or_else(|| ServeError::bad("\"topics\" entries must be topic ids"))?
                    as u32);
        }
        let k = match json.get("k") {
            None => 10,
            Some(v) => v
                .as_u64()
                .filter(|&k| k > 0 && k <= u32::MAX as u64)
                .ok_or_else(|| ServeError::bad("\"k\" must be a positive integer"))?
                as u32,
        };
        let algo = match json.get("algo") {
            None => Algo::Auto,
            Some(Json::Str(s)) => {
                Algo::parse(s).ok_or_else(|| ServeError::bad(format!("unknown algo {s:?}")))?
            }
            Some(_) => return Err(ServeError::bad("\"algo\" must be a string")),
        };
        Ok(ServeRequest { id, index, request: EngineRequest { topics, k, algo } })
    }
}

/// Multi-index routing: one serve process, many named indexes, one
/// engine each — all behind the process-wide
/// [`kbtim_index::PageCache`], so indexes sharing segment files share
/// their resident pages.
///
/// The first registered index is the **default route**: requests
/// without an `"index"` field go there, which keeps single-index
/// deployments (and PR-4-era clients) working unchanged. An `"index"`
/// naming no registered engine gets an `unknown_index` error naming the
/// served indexes.
pub struct Router {
    engines: Vec<(String, Arc<QueryEngine>)>,
}

impl Router {
    /// A single-index router: `engine` becomes the default route under
    /// the name `"default"`.
    pub fn single(engine: Arc<QueryEngine>) -> Router {
        Router { engines: vec![("default".to_string(), engine)] }
    }

    /// An empty router; add routes with [`Router::add`]. At least one
    /// route must exist before serving.
    pub fn new() -> Router {
        Router { engines: Vec::new() }
    }

    /// Register `engine` under `name`. The first registration is the
    /// default route. Duplicate names are an error.
    pub fn add(&mut self, name: impl Into<String>, engine: Arc<QueryEngine>) -> Result<(), String> {
        let name = name.into();
        if name.is_empty() {
            return Err("index name must not be empty".to_string());
        }
        if self.engines.iter().any(|(n, _)| *n == name) {
            return Err(format!("duplicate index name {name:?}"));
        }
        self.engines.push((name, engine));
        Ok(())
    }

    /// Resolve a request's routing field: `None` routes to the default
    /// (first) index, `Some(name)` to the engine of that name.
    pub fn engine(&self, index: Option<&str>) -> Option<&Arc<QueryEngine>> {
        match index {
            None => self.engines.first().map(|(_, e)| e),
            Some(name) => self.engines.iter().find(|(n, _)| n == name).map(|(_, e)| e),
        }
    }

    /// Registered index names, in registration (routing-priority) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.engines.iter().map(|(n, _)| n.as_str())
    }

    /// Number of served indexes.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether no index is registered yet.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }
}

impl Default for Router {
    fn default() -> Router {
        Router::new()
    }
}

fn push_id(out: &mut String, id: Option<u64>) {
    if let Some(id) = id {
        out.push_str(&format!("\"id\":{id},"));
    }
}

fn push_u32_array(out: &mut String, key: &str, items: impl Iterator<Item = u64>) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":[");
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item.to_string());
    }
    out.push(']');
}

/// Render a successful outcome as one protocol line (no trailing
/// newline). `index` is the request's routing field, echoed back when
/// present.
pub fn render_outcome(
    id: Option<u64>,
    index: Option<&str>,
    algo: Algo,
    outcome: &QueryOutcome,
) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    push_id(&mut out, id);
    if let Some(index) = index {
        out.push_str("\"index\":");
        escape_into(index, &mut out);
        out.push(',');
    }
    out.push_str(&format!("\"algo\":\"{algo}\","));
    push_u32_array(&mut out, "seeds", outcome.seeds.iter().map(|&s| s as u64));
    out.push(',');
    push_u32_array(&mut out, "marginal_gains", outcome.marginal_gains.iter().copied());
    out.push_str(&format!(
        ",\"coverage\":{},\"estimated_influence\":{:.6},\"theta_q\":{},\
         \"rr_sets_loaded\":{},\"elapsed_us\":{}}}",
        outcome.coverage,
        outcome.estimated_influence,
        outcome.stats.theta_q,
        outcome.stats.rr_sets_loaded,
        outcome.stats.elapsed.as_micros(),
    ));
    out
}

/// Render a structured error as one protocol line (no trailing
/// newline): `{"id":…,"error":"<message>","code":"<code>"}`.
pub fn render_error(id: Option<u64>, code: &str, message: &str) -> String {
    let mut out = String::with_capacity(64);
    out.push('{');
    push_id(&mut out, id);
    out.push_str("\"error\":");
    escape_into(message, &mut out);
    out.push_str(",\"code\":");
    escape_into(code, &mut out);
    out.push('}');
    out
}

/// Handle one protocol line end to end: parse, route, query, render.
/// Never panics on malformed input — every failure becomes a structured
/// `error` response.
pub fn handle_line(router: &Router, line: &str) -> String {
    let parsed = match ServeRequest::parse(line) {
        Ok(parsed) => parsed,
        Err(err) => {
            // Best-effort id recovery so pipelined clients can still
            // attribute the error line (validation failures — unknown
            // field, bad k — happen on perfectly parseable JSON).
            let id = Json::parse(line).ok().and_then(|json| json.get("id").and_then(Json::as_u64));
            return render_error(id, err.code, &err.message);
        }
    };
    let Some(engine) = router.engine(parsed.index.as_deref()) else {
        let known: Vec<&str> = router.names().collect();
        return render_error(
            parsed.id,
            "unknown_index",
            &format!(
                "unknown index {:?} (serving: {})",
                parsed.index.as_deref().unwrap_or_default(),
                known.join(", ")
            ),
        );
    };
    match engine.query(&parsed.request) {
        Ok(outcome) => {
            render_outcome(parsed.id, parsed.index.as_deref(), parsed.request.algo, &outcome)
        }
        Err(err) => render_error(parsed.id, "engine_error", &err.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_scalar_round_trips() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse(r#""hi\nthere""#).unwrap(), Json::Str("hi\nthere".to_string()));
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::Str("A".to_string()));
        assert_eq!(Json::parse(r#""héllo""#).unwrap(), Json::Str("héllo".to_string()));
    }

    #[test]
    fn json_compound_values() {
        let v = Json::parse(r#"{"a": [1, 2], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Str("d".to_string())));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn json_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "{\"a\":1,\"a\":2}", "\"x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn request_parsing() {
        let req = ServeRequest::parse(r#"{"id":3,"topics":[0,5],"k":8,"algo":"irr"}"#).unwrap();
        assert_eq!(req.id, Some(3));
        assert_eq!(req.index, None);
        assert_eq!(req.request.topics, vec![0, 5]);
        assert_eq!(req.request.k, 8);
        assert_eq!(req.request.algo, Algo::Irr);

        // Defaults: k = 10, algo = auto, id and index omitted.
        let req = ServeRequest::parse(r#"{"topics":[2]}"#).unwrap();
        assert_eq!(req.id, None);
        assert_eq!(req.index, None);
        assert_eq!(req.request.k, 10);
        assert_eq!(req.request.algo, Algo::Auto);

        // Routing field.
        let req = ServeRequest::parse(r#"{"index":"sports","topics":[2]}"#).unwrap();
        assert_eq!(req.index.as_deref(), Some("sports"));
    }

    #[test]
    fn request_rejects_bad_fields() {
        for (bad, code) in [
            (r#"{"k":5}"#, "bad_request"),                      // missing topics
            (r#"{"topics":[0],"k":0}"#, "bad_request"),         // zero k
            (r#"{"topics":[0],"algo":"fast"}"#, "bad_request"), // unknown algo
            (r#"{"topics":"0"}"#, "bad_request"),               // topics not an array
            (r#"{"topics":[0.5]}"#, "bad_request"),             // fractional topic
            (r#"{"topics":[0],"index":7}"#, "bad_request"),     // index not a string
            (r#"{"topics":[0],"frobnicate":1}"#, "unknown_field"),
            (r#"{"topics":[0],"indx":"a"}"#, "unknown_field"), // the typo guard
            (r#"[0,1]"#, "bad_request"),                       // not an object
            (r#"{"topics":[0}"#, "parse_error"),               // malformed JSON
        ] {
            let err = ServeRequest::parse(bad).expect_err(bad);
            assert_eq!(err.code, code, "{bad:?} → {err}");
        }
    }

    #[test]
    fn responses_are_parseable_json() {
        let rendered = render_error(Some(9), "unknown_index", "no \"such\" index\n");
        let back = Json::parse(&rendered).unwrap();
        assert_eq!(back.get("id").unwrap().as_u64(), Some(9));
        assert_eq!(back.get("error"), Some(&Json::Str("no \"such\" index\n".to_string())));
        assert_eq!(back.get("code"), Some(&Json::Str("unknown_index".to_string())));
    }

    #[test]
    fn router_routes_by_name_with_first_as_default() {
        use crate::core::theta::SamplingConfig;
        use crate::datagen::{DatasetConfig, DatasetFamily};
        use crate::index::{IndexBuildConfig, IndexBuilder, KbtimIndex};
        use crate::propagation::model::IcModel;
        use crate::storage::{IoStats, TempDir};

        let data =
            DatasetConfig::family(DatasetFamily::News).num_users(200).num_topics(3).seed(5).build();
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(300),
                opt_initial_samples: 32,
                opt_max_rounds: 3,
                ..SamplingConfig::fast()
            },
            ..IndexBuildConfig::default()
        };
        let dir = TempDir::new("router-unit").unwrap();
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
        let open = || {
            Arc::new(QueryEngine::new(Arc::new(
                KbtimIndex::open(dir.path(), IoStats::new()).unwrap(),
            )))
        };

        let empty = Router::new();
        assert!(empty.is_empty());
        assert!(empty.engine(None).is_none());
        assert_eq!(Router::default().len(), 0);

        // Routing: first registration is the default route, names
        // select exactly their engine, unknown names miss.
        let (a, b) = (open(), open());
        let mut router = Router::new();
        router.add("alpha", Arc::clone(&a)).unwrap();
        router.add("beta", Arc::clone(&b)).unwrap();
        assert!(Arc::ptr_eq(router.engine(None).unwrap(), &a), "first added is the default");
        assert!(Arc::ptr_eq(router.engine(Some("alpha")).unwrap(), &a));
        assert!(Arc::ptr_eq(router.engine(Some("beta")).unwrap(), &b));
        assert!(router.engine(Some("gamma")).is_none());
        assert_eq!(router.names().collect::<Vec<_>>(), ["alpha", "beta"]);
        assert_eq!(router.len(), 2);
        assert!(router.add("alpha", Arc::clone(&b)).unwrap_err().contains("duplicate"));
        assert!(router.add("", Arc::clone(&b)).is_err(), "empty names rejected");

        // The single-index convenience form registers under "default".
        let single = Router::single(Arc::clone(&a));
        assert_eq!(single.len(), 1);
        assert!(Arc::ptr_eq(single.engine(None).unwrap(), &a));
        assert!(Arc::ptr_eq(single.engine(Some("default")).unwrap(), &a));
    }
}
