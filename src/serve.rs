//! Line-delimited JSON protocol of `kbtim serve` — the normative
//! specification lives in `docs/PROTOCOL.md`; this module implements it.
//!
//! One request per line in, one response per line out — over stdin/stdout
//! or a TCP connection, the same bytes either way. The protocol is
//! deliberately small and self-contained (the workspace vendors no JSON
//! crate, so a subset parser lives here):
//!
//! ```text
//! → {"id": 7, "index": "sports", "topics": [0, 1], "k": 10, "algo": "irr"}
//! ← {"id":7,"index":"sports","algo":"irr","seeds":[83,411],
//!    "marginal_gains":[52,40],"coverage":92,"estimated_influence":14.25,
//!    "theta_q":1800,"rr_sets_loaded":240,"shards":1,"elapsed_us":913}
//! ```
//!
//! Request fields: `topics` (array of topic ids, required), `k` (seed
//! count, default 10), `algo` (`rr` / `irr` / `auto` / `memory`, default
//! `auto`), `index` (which served index answers, default the server's
//! first — see [`Router`]), `id` (optional echo token for matching
//! responses to pipelined requests). Unknown fields are rejected — a
//! typo'd `"indx"` must fail loudly, not route to the default index.
//!
//! Errors come back on the same line protocol as structured objects:
//! `{"id":7,"error":"...","code":"unknown_field"}` — `code` is a stable
//! machine-readable discriminant (see [`ServeError`]), `error` the
//! human-readable message. A malformed line never kills the connection.

use kbtim_index::{Algo, EngineRequest, IndexError, QueryEngine, QueryOutcome};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum nesting depth the JSON parser accepts. Protocol values are
/// at most two levels deep; the cap exists so a hostile line of
/// `[[[[…` fails with a parse error instead of exhausting the thread
/// stack (stack overflow aborts the whole process — `catch_unwind`
/// cannot contain it).
const MAX_JSON_DEPTH: u32 = 64;

/// A parsed JSON value (the subset the protocol needs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as f64 (ids and counts fit exactly).
    Num(f64),
    /// A (de-escaped) string.
    Str(String),
    /// An array of values.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs (duplicate keys rejected at
    /// parse time).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON value; trailing non-whitespace is an
    /// error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), at: 0, depth: 0 };
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.at));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer that fits `u64` exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
    depth: u32,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.at).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.at))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.nested(Parser::array),
            b'{' => self.nested(Parser::object),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected {:?} at offset {}", other as char, self.at)),
        }
    }

    /// Run a container parse one nesting level deeper, enforcing
    /// [`MAX_JSON_DEPTH`]. Recursion in this parser is bounded only by
    /// input nesting, so the cap is what keeps `[[[[…` from blowing the
    /// thread stack.
    fn nested(&mut self, parse: fn(&mut Self) -> Result<Json, String>) -> Result<Json, String> {
        if self.depth >= MAX_JSON_DEPTH {
            return Err(format!("nesting deeper than {MAX_JSON_DEPTH} at offset {}", self.at));
        }
        self.depth += 1;
        let result = parse(self);
        self.depth -= 1;
        result
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while let Some(&b) = self.bytes.get(self.at) {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.at += 1;
            } else {
                break;
            }
        }
        // The matched bytes are all ASCII, so this conversion cannot
        // fail — but the serving loop must never panic on client
        // bytes, so the impossible case degrades to a parse error.
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| format!("bad number bytes at offset {start}"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.at) else {
                return Err("unterminated string".to_string());
            };
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.at) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            self.at += 4;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // Surrogates (rare in topic queries) are
                            // replaced rather than paired — the protocol
                            // carries no user text where this matters.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.at - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or("invalid utf-8 in string")?;
                    out.push_str(chunk);
                    self.at = start + len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.at += 1,
                b']' => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {:?}", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        if self.peek()? == b'}' {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.at += 1,
                b'}' => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {:?}", other as char)),
            }
        }
    }
}

/// Escape a string for embedding in a JSON response.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A structured protocol error: a stable machine-readable `code` plus a
/// human-readable `message`, rendered as
/// `{"error":"<message>","code":"<code>"}`.
///
/// Codes (normative list in `docs/PROTOCOL.md`):
///
/// * `parse_error` — the line is not valid JSON;
/// * `unknown_field` — the request object carries a top-level key the
///   protocol does not define (typo guard: `"indx"` fails loudly);
/// * `bad_request` — a defined field has the wrong type or an invalid
///   value (missing `topics`, zero `k`, unknown `algo`, …);
/// * `unknown_index` — the `index` field names no served index;
/// * `engine_error` — the query itself failed inside the engine;
/// * `overloaded` — admission control shed the request: the in-flight
///   count already sits at `--max-queue` (load-shed, retry later);
/// * `deadline_exceeded` — the request's deadline (its `deadline_ms`
///   field, or the server's `--deadline-ms` default) passed before the
///   query finished;
/// * `shutting_down` — the server is draining after SIGTERM/stdin-EOF
///   and accepts no new work;
/// * `internal_error` — the query panicked; the panic was contained
///   and the connection survives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Stable machine-readable discriminant (`snake_case`).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl ServeError {
    fn parse(message: impl Into<String>) -> ServeError {
        ServeError { code: "parse_error", message: message.into() }
    }

    fn bad(message: impl Into<String>) -> ServeError {
        ServeError { code: "bad_request", message: message.into() }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.code)
    }
}

impl std::error::Error for ServeError {}

/// A parsed serve request: the engine request plus the client's routing
/// and echo fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Echoed back verbatim in the response, if given.
    pub id: Option<u64>,
    /// Which served index answers (echoed back); `None` routes to the
    /// server's default (first) index.
    pub index: Option<String>,
    /// Per-request deadline in milliseconds from admission; `None`
    /// falls back to the server default (`--deadline-ms`). `0` means
    /// "already expired" and deterministically yields
    /// `deadline_exceeded`.
    pub deadline_ms: Option<u64>,
    /// The query to run.
    pub request: EngineRequest,
}

impl ServeRequest {
    /// Parse one protocol line.
    pub fn parse(line: &str) -> Result<ServeRequest, ServeError> {
        let json = Json::parse(line).map_err(ServeError::parse)?;
        let Json::Obj(fields) = &json else {
            return Err(ServeError::bad("request must be a JSON object"));
        };
        for (key, _) in fields {
            if !matches!(key.as_str(), "id" | "index" | "topics" | "k" | "algo" | "deadline_ms") {
                return Err(ServeError {
                    code: "unknown_field",
                    message: format!("unknown field {key:?}"),
                });
            }
        }
        let id = match json.get("id") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| ServeError::bad("\"id\" must be a non-negative integer"))?,
            ),
        };
        let index = match json.get("index") {
            None => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(ServeError::bad("\"index\" must be a string")),
        };
        let topics_json =
            json.get("topics").ok_or_else(|| ServeError::bad("missing \"topics\""))?;
        let Json::Arr(items) = topics_json else {
            return Err(ServeError::bad("\"topics\" must be an array"));
        };
        let mut topics = Vec::with_capacity(items.len());
        for item in items {
            let id = item.as_u64().filter(|&t| t <= u32::MAX as u64);
            topics
                .push(id.ok_or_else(|| ServeError::bad("\"topics\" entries must be topic ids"))?
                    as u32);
        }
        let k = match json.get("k") {
            None => 10,
            Some(v) => v
                .as_u64()
                .filter(|&k| k > 0 && k <= u32::MAX as u64)
                .ok_or_else(|| ServeError::bad("\"k\" must be a positive integer"))?
                as u32,
        };
        let algo = match json.get("algo") {
            None => Algo::Auto,
            Some(Json::Str(s)) => {
                Algo::parse(s).ok_or_else(|| ServeError::bad(format!("unknown algo {s:?}")))?
            }
            Some(_) => return Err(ServeError::bad("\"algo\" must be a string")),
        };
        let deadline_ms = match json.get("deadline_ms") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                ServeError::bad("\"deadline_ms\" must be a non-negative integer")
            })?),
        };
        Ok(ServeRequest { id, index, deadline_ms, request: EngineRequest { topics, k, algo } })
    }
}

/// Multi-index routing: one serve process, many named indexes, one
/// engine each — all behind the process-wide
/// [`kbtim_index::PageCache`], so indexes sharing segment files share
/// their resident pages.
///
/// The first registered index is the **default route**: requests
/// without an `"index"` field go there, which keeps single-index
/// deployments (and PR-4-era clients) working unchanged. An `"index"`
/// naming no registered engine gets an `unknown_index` error naming the
/// served indexes.
pub struct Router {
    engines: Vec<(String, Arc<QueryEngine>)>,
}

impl Router {
    /// A single-index router: `engine` becomes the default route under
    /// the name `"default"`.
    pub fn single(engine: Arc<QueryEngine>) -> Router {
        Router { engines: vec![("default".to_string(), engine)] }
    }

    /// An empty router; add routes with [`Router::add`]. At least one
    /// route must exist before serving.
    pub fn new() -> Router {
        Router { engines: Vec::new() }
    }

    /// Register `engine` under `name`. The first registration is the
    /// default route. Duplicate names are an error.
    pub fn add(&mut self, name: impl Into<String>, engine: Arc<QueryEngine>) -> Result<(), String> {
        let name = name.into();
        if name.is_empty() {
            return Err("index name must not be empty".to_string());
        }
        if self.engines.iter().any(|(n, _)| *n == name) {
            return Err(format!("duplicate index name {name:?}"));
        }
        self.engines.push((name, engine));
        Ok(())
    }

    /// Resolve a request's routing field: `None` routes to the default
    /// (first) index, `Some(name)` to the engine of that name.
    pub fn engine(&self, index: Option<&str>) -> Option<&Arc<QueryEngine>> {
        match index {
            None => self.engines.first().map(|(_, e)| e),
            Some(name) => self.engines.iter().find(|(n, _)| n == name).map(|(_, e)| e),
        }
    }

    /// Registered index names, in registration (routing-priority) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.engines.iter().map(|(n, _)| n.as_str())
    }

    /// Number of served indexes.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether no index is registered yet.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }
}

impl Default for Router {
    fn default() -> Router {
        Router::new()
    }
}

/// Shared serving state for overload control and graceful drain: the
/// shutdown flag, the bounded admission count, the default deadline,
/// and the served/shed/failed books reported at exit.
///
/// One `ServeCtx` spans every connection of a serve process; handlers
/// thread `&ServeCtx` into [`handle_line_ctx`]. All state is atomic —
/// no locks, so a panicking request cannot poison admission control.
#[derive(Debug)]
pub struct ServeCtx {
    shutdown: AtomicBool,
    inflight: AtomicUsize,
    /// Admission bound: requests beyond this many in flight are shed
    /// with `overloaded`. `0` rejects everything (useful in tests);
    /// `usize::MAX` disables shedding.
    max_inflight: usize,
    /// Default deadline applied when a request carries no
    /// `deadline_ms` field; `None` means unbounded.
    default_deadline: Option<Duration>,
    served: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    panicked: AtomicU64,
}

impl ServeCtx {
    /// A context with the given admission bound and default deadline.
    pub fn new(max_inflight: usize, default_deadline: Option<Duration>) -> ServeCtx {
        ServeCtx {
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            max_inflight,
            default_deadline,
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
        }
    }

    /// No admission bound, no default deadline — the PR-4-era serving
    /// behaviour.
    pub fn unlimited() -> ServeCtx {
        ServeCtx::new(usize::MAX, None)
    }

    /// Flip the shutdown flag: new requests get `shutting_down`,
    /// in-flight ones run to completion. Idempotent.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether [`ServeCtx::begin_shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests currently admitted and not yet answered.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Try to admit one request; `None` means the queue is full and
    /// the caller must shed. The permit releases the slot on drop —
    /// including on panic, so containment never leaks admission slots.
    fn admit(&self) -> Option<AdmissionPermit<'_>> {
        let mut cur = self.inflight.load(Ordering::SeqCst);
        loop {
            if cur >= self.max_inflight {
                return None;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Some(AdmissionPermit { ctx: self }),
                Err(now) => cur = now,
            }
        }
    }

    /// Final stats line for the operator log, rendered at drain.
    pub fn stats_line(&self) -> String {
        format!(
            "served={} shed={} deadline_exceeded={} failed={} panicked={}",
            self.served.load(Ordering::SeqCst),
            self.shed.load(Ordering::SeqCst),
            self.expired.load(Ordering::SeqCst),
            self.failed.load(Ordering::SeqCst),
            self.panicked.load(Ordering::SeqCst),
        )
    }

    /// Successfully answered requests.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::SeqCst)
    }

    /// Requests shed by admission control or the shutdown gate.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::SeqCst)
    }

    fn count(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::SeqCst);
    }
}

/// RAII admission slot: decrements the in-flight count on drop.
struct AdmissionPermit<'a> {
    ctx: &'a ServeCtx,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.ctx.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn push_id(out: &mut String, id: Option<u64>) {
    if let Some(id) = id {
        out.push_str(&format!("\"id\":{id},"));
    }
}

fn push_u32_array(out: &mut String, key: &str, items: impl Iterator<Item = u64>) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":[");
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item.to_string());
    }
    out.push(']');
}

/// Render a successful outcome as one protocol line (no trailing
/// newline). `index` is the request's routing field, echoed back when
/// present; `shards` is the answering index's shard count (1 for the
/// flat layout), so clients can see when scatter-gather was in play.
pub fn render_outcome(
    id: Option<u64>,
    index: Option<&str>,
    algo: Algo,
    outcome: &QueryOutcome,
    shards: usize,
) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    push_id(&mut out, id);
    if let Some(index) = index {
        out.push_str("\"index\":");
        escape_into(index, &mut out);
        out.push(',');
    }
    out.push_str(&format!("\"algo\":\"{algo}\","));
    push_u32_array(&mut out, "seeds", outcome.seeds.iter().map(|&s| s as u64));
    out.push(',');
    push_u32_array(&mut out, "marginal_gains", outcome.marginal_gains.iter().copied());
    out.push_str(&format!(
        ",\"coverage\":{},\"estimated_influence\":{:.6},\"theta_q\":{},\
         \"rr_sets_loaded\":{},\"shards\":{shards},\"elapsed_us\":{}}}",
        outcome.coverage,
        outcome.estimated_influence,
        outcome.stats.theta_q,
        outcome.stats.rr_sets_loaded,
        outcome.stats.elapsed.as_micros(),
    ));
    out
}

/// Render a structured error as one protocol line (no trailing
/// newline): `{"id":…,"error":"<message>","code":"<code>"}`.
pub fn render_error(id: Option<u64>, code: &str, message: &str) -> String {
    let mut out = String::with_capacity(64);
    out.push('{');
    push_id(&mut out, id);
    out.push_str("\"error\":");
    escape_into(message, &mut out);
    out.push_str(",\"code\":");
    escape_into(code, &mut out);
    out.push('}');
    out
}

/// Handle one protocol line end to end: parse, route, query, render.
/// Never panics on malformed input — every failure becomes a structured
/// `error` response. Uses an unlimited [`ServeCtx`] (no admission
/// bound, no default deadline); servers with overload control call
/// [`handle_line_ctx`] directly.
pub fn handle_line(router: &Router, line: &str) -> String {
    handle_line_ctx(router, &ServeCtx::unlimited(), line)
}

/// [`handle_line`] with shared serving state: shutdown gate, bounded
/// admission, deadlines, and panic containment, in that order:
///
/// 1. parse (a malformed line costs no admission slot);
/// 2. `shutting_down` if the context is draining;
/// 3. `overloaded` if the in-flight count is at the bound;
/// 4. route (`unknown_index`);
/// 5. compute the deadline — the request's `deadline_ms`, else the
///    context default — and reject already-expired ones;
/// 6. run the query under `catch_unwind`: a panic becomes
///    `internal_error` and the worker/connection survives.
pub fn handle_line_ctx(router: &Router, ctx: &ServeCtx, line: &str) -> String {
    let parsed = match ServeRequest::parse(line) {
        Ok(parsed) => parsed,
        Err(err) => {
            // Best-effort id recovery so pipelined clients can still
            // attribute the error line (validation failures — unknown
            // field, bad k — happen on perfectly parseable JSON).
            let id = Json::parse(line).ok().and_then(|json| json.get("id").and_then(Json::as_u64));
            ServeCtx::count(&ctx.failed);
            return render_error(id, err.code, &err.message);
        }
    };
    if ctx.is_shutting_down() {
        ServeCtx::count(&ctx.shed);
        return render_error(parsed.id, "shutting_down", "server is draining; request rejected");
    }
    let Some(_permit) = ctx.admit() else {
        ServeCtx::count(&ctx.shed);
        return render_error(
            parsed.id,
            "overloaded",
            &format!("admission queue full ({} in flight)", ctx.max_inflight),
        );
    };
    let Some(engine) = router.engine(parsed.index.as_deref()) else {
        let known: Vec<&str> = router.names().collect();
        ServeCtx::count(&ctx.failed);
        return render_error(
            parsed.id,
            "unknown_index",
            &format!(
                "unknown index {:?} (serving: {})",
                parsed.index.as_deref().unwrap_or_default(),
                known.join(", ")
            ),
        );
    };
    let budget_ms = parsed
        .deadline_ms
        .or_else(|| ctx.default_deadline.map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)));
    let deadline = budget_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    if deadline.is_some_and(|d| Instant::now() >= d) {
        ServeCtx::count(&ctx.expired);
        return render_error(parsed.id, "deadline_exceeded", "deadline expired at admission");
    }
    // The engine already contains panics per flight internally, but it
    // re-raises them to the submitting thread; this boundary is what
    // turns them into a structured response instead of a dead
    // connection.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.query_deadline(&parsed.request, deadline)
    }));
    match result {
        Ok(Ok(outcome)) => {
            ServeCtx::count(&ctx.served);
            render_outcome(
                parsed.id,
                parsed.index.as_deref(),
                parsed.request.algo,
                &outcome,
                engine.index().num_shards(),
            )
        }
        Ok(Err(err)) => {
            if matches!(err.index_error(), IndexError::DeadlineExceeded) {
                ServeCtx::count(&ctx.expired);
                render_error(parsed.id, "deadline_exceeded", &err.to_string())
            } else {
                ServeCtx::count(&ctx.failed);
                render_error(parsed.id, "engine_error", &err.to_string())
            }
        }
        Err(_) => {
            ServeCtx::count(&ctx.panicked);
            render_error(
                parsed.id,
                "internal_error",
                "query execution panicked; the fault was contained",
            )
        }
    }
}

/// One line read from a bounded reader: see [`read_bounded_line`].
#[derive(Debug, PartialEq, Eq)]
pub enum LineRead {
    /// Clean end of stream (no partial line pending).
    Eof,
    /// One complete line, newline stripped (also returned for a final
    /// unterminated line at EOF).
    Line(String),
    /// The line exceeded the cap. Its bytes were consumed up to and
    /// including the next newline (or EOF), so the stream is resynced —
    /// answer with `bad_request` and keep reading.
    TooLong,
}

/// Read one `\n`-terminated line without ever buffering more than
/// `max_len` bytes of it — the fix for the unbounded `BufRead::lines`
/// loop a hostile client could feed gigabytes without a newline.
/// Oversized lines are consumed (not buffered) through their
/// terminating newline so the caller can shed one request and continue
/// with the next. Invalid UTF-8 is replaced, to be rejected by the JSON
/// parser downstream.
pub fn read_bounded_line<R: std::io::BufRead>(
    reader: &mut R,
    max_len: usize,
) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if overflow {
                LineRead::TooLong
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(finish_line(buf))
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflow && buf.len() + pos > max_len {
                    overflow = true;
                    buf.clear();
                } else if !overflow {
                    buf.extend_from_slice(&chunk[..pos]);
                }
                reader.consume(pos + 1);
                return Ok(if overflow {
                    LineRead::TooLong
                } else {
                    LineRead::Line(finish_line(buf))
                });
            }
            None => {
                let len = chunk.len();
                if !overflow && buf.len() + len > max_len {
                    overflow = true;
                    buf.clear();
                } else if !overflow {
                    buf.extend_from_slice(chunk);
                }
                reader.consume(len);
            }
        }
    }
}

fn finish_line(mut buf: Vec<u8>) -> String {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8_lossy(&buf).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_scalar_round_trips() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse(r#""hi\nthere""#).unwrap(), Json::Str("hi\nthere".to_string()));
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::Str("A".to_string()));
        assert_eq!(Json::parse(r#""héllo""#).unwrap(), Json::Str("héllo".to_string()));
    }

    #[test]
    fn json_compound_values() {
        let v = Json::parse(r#"{"a": [1, 2], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Str("d".to_string())));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn json_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "{\"a\":1,\"a\":2}", "\"x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn request_parsing() {
        let req = ServeRequest::parse(r#"{"id":3,"topics":[0,5],"k":8,"algo":"irr"}"#).unwrap();
        assert_eq!(req.id, Some(3));
        assert_eq!(req.index, None);
        assert_eq!(req.request.topics, vec![0, 5]);
        assert_eq!(req.request.k, 8);
        assert_eq!(req.request.algo, Algo::Irr);

        // Defaults: k = 10, algo = auto, id and index omitted.
        let req = ServeRequest::parse(r#"{"topics":[2]}"#).unwrap();
        assert_eq!(req.id, None);
        assert_eq!(req.index, None);
        assert_eq!(req.request.k, 10);
        assert_eq!(req.request.algo, Algo::Auto);

        // Routing field.
        let req = ServeRequest::parse(r#"{"index":"sports","topics":[2]}"#).unwrap();
        assert_eq!(req.index.as_deref(), Some("sports"));
    }

    #[test]
    fn request_rejects_bad_fields() {
        for (bad, code) in [
            (r#"{"k":5}"#, "bad_request"),                      // missing topics
            (r#"{"topics":[0],"k":0}"#, "bad_request"),         // zero k
            (r#"{"topics":[0],"algo":"fast"}"#, "bad_request"), // unknown algo
            (r#"{"topics":"0"}"#, "bad_request"),               // topics not an array
            (r#"{"topics":[0.5]}"#, "bad_request"),             // fractional topic
            (r#"{"topics":[0],"index":7}"#, "bad_request"),     // index not a string
            (r#"{"topics":[0],"frobnicate":1}"#, "unknown_field"),
            (r#"{"topics":[0],"indx":"a"}"#, "unknown_field"), // the typo guard
            (r#"[0,1]"#, "bad_request"),                       // not an object
            (r#"{"topics":[0}"#, "parse_error"),               // malformed JSON
        ] {
            let err = ServeRequest::parse(bad).expect_err(bad);
            assert_eq!(err.code, code, "{bad:?} → {err}");
        }
    }

    #[test]
    fn responses_are_parseable_json() {
        let rendered = render_error(Some(9), "unknown_index", "no \"such\" index\n");
        let back = Json::parse(&rendered).unwrap();
        assert_eq!(back.get("id").unwrap().as_u64(), Some(9));
        assert_eq!(back.get("error"), Some(&Json::Str("no \"such\" index\n".to_string())));
        assert_eq!(back.get("code"), Some(&Json::Str("unknown_index".to_string())));
    }

    #[test]
    fn router_routes_by_name_with_first_as_default() {
        use crate::core::theta::SamplingConfig;
        use crate::datagen::{DatasetConfig, DatasetFamily};
        use crate::index::{IndexBuildConfig, IndexBuilder, KbtimIndex};
        use crate::propagation::model::IcModel;
        use crate::storage::{IoStats, TempDir};

        let data =
            DatasetConfig::family(DatasetFamily::News).num_users(200).num_topics(3).seed(5).build();
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(300),
                opt_initial_samples: 32,
                opt_max_rounds: 3,
                ..SamplingConfig::fast()
            },
            ..IndexBuildConfig::default()
        };
        let dir = TempDir::new("router-unit").unwrap();
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
        let open = || {
            Arc::new(QueryEngine::new(Arc::new(
                KbtimIndex::open(dir.path(), IoStats::new()).unwrap(),
            )))
        };

        let empty = Router::new();
        assert!(empty.is_empty());
        assert!(empty.engine(None).is_none());
        assert_eq!(Router::default().len(), 0);

        // Routing: first registration is the default route, names
        // select exactly their engine, unknown names miss.
        let (a, b) = (open(), open());
        let mut router = Router::new();
        router.add("alpha", Arc::clone(&a)).unwrap();
        router.add("beta", Arc::clone(&b)).unwrap();
        assert!(Arc::ptr_eq(router.engine(None).unwrap(), &a), "first added is the default");
        assert!(Arc::ptr_eq(router.engine(Some("alpha")).unwrap(), &a));
        assert!(Arc::ptr_eq(router.engine(Some("beta")).unwrap(), &b));
        assert!(router.engine(Some("gamma")).is_none());
        assert_eq!(router.names().collect::<Vec<_>>(), ["alpha", "beta"]);
        assert_eq!(router.len(), 2);
        assert!(router.add("alpha", Arc::clone(&b)).unwrap_err().contains("duplicate"));
        assert!(router.add("", Arc::clone(&b)).is_err(), "empty names rejected");

        // The single-index convenience form registers under "default".
        let single = Router::single(Arc::clone(&a));
        assert_eq!(single.len(), 1);
        assert!(Arc::ptr_eq(single.engine(None).unwrap(), &a));
        assert!(Arc::ptr_eq(single.engine(Some("default")).unwrap(), &a));
    }
}
