//! Line-delimited JSON protocol of `kbtim serve`.
//!
//! One request per line in, one response per line out — over stdin/stdout
//! or a TCP connection, the same bytes either way. The protocol is
//! deliberately small and self-contained (the workspace vendors no JSON
//! crate, so a subset parser lives here):
//!
//! ```text
//! → {"id": 7, "topics": [0, 1], "k": 10, "algo": "irr"}
//! ← {"id":7,"algo":"irr","seeds":[83,411],"marginal_gains":[52,40],
//!    "coverage":92,"estimated_influence":14.25,"theta_q":1800,
//!    "rr_sets_loaded":240,"elapsed_us":913}
//! ```
//!
//! Request fields: `topics` (array of topic ids, required), `k` (seed
//! count, default 10), `algo` (`rr` / `irr` / `auto` / `memory`, default
//! `auto`), `id` (optional echo token for matching responses to pipelined
//! requests). Unknown fields are rejected — a typo'd `"topcis"` should
//! fail loudly, not select seeds for the empty query.
//!
//! Errors come back on the same line protocol:
//! `{"id":7,"error":"..."}`. A malformed line never kills the
//! connection.

use kbtim_index::{Algo, EngineRequest, QueryEngine, QueryOutcome};

/// A parsed JSON value (the subset the protocol needs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as f64 (ids and counts fit exactly).
    Num(f64),
    /// A (de-escaped) string.
    Str(String),
    /// An array of values.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs (duplicate keys rejected at
    /// parse time).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON value; trailing non-whitespace is an
    /// error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), at: 0 };
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.at));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer that fits `u64` exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.at).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.at))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected {:?} at offset {}", other as char, self.at)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while let Some(&b) = self.bytes.get(self.at) {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.at += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii digits");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.at) else {
                return Err("unterminated string".to_string());
            };
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.at) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            self.at += 4;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // Surrogates (rare in topic queries) are
                            // replaced rather than paired — the protocol
                            // carries no user text where this matters.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.at - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or("invalid utf-8 in string")?;
                    out.push_str(chunk);
                    self.at = start + len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.at += 1,
                b']' => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {:?}", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        if self.peek()? == b'}' {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.at += 1,
                b'}' => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {:?}", other as char)),
            }
        }
    }
}

/// Escape a string for embedding in a JSON response.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed serve request: the engine request plus the client's echo
/// token.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Echoed back verbatim in the response, if given.
    pub id: Option<u64>,
    /// The query to run.
    pub request: EngineRequest,
}

impl ServeRequest {
    /// Parse one protocol line.
    pub fn parse(line: &str) -> Result<ServeRequest, String> {
        let json = Json::parse(line)?;
        let Json::Obj(fields) = &json else {
            return Err("request must be a JSON object".to_string());
        };
        for (key, _) in fields {
            if !matches!(key.as_str(), "id" | "topics" | "k" | "algo") {
                return Err(format!("unknown field {key:?}"));
            }
        }
        let id = match json.get("id") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or("\"id\" must be a non-negative integer")?),
        };
        let topics_json = json.get("topics").ok_or("missing \"topics\"")?;
        let Json::Arr(items) = topics_json else {
            return Err("\"topics\" must be an array".to_string());
        };
        let mut topics = Vec::with_capacity(items.len());
        for item in items {
            let id = item.as_u64().filter(|&t| t <= u32::MAX as u64);
            topics.push(id.ok_or("\"topics\" entries must be topic ids")? as u32);
        }
        let k = match json.get("k") {
            None => 10,
            Some(v) => v
                .as_u64()
                .filter(|&k| k > 0 && k <= u32::MAX as u64)
                .ok_or("\"k\" must be a positive integer")? as u32,
        };
        let algo = match json.get("algo") {
            None => Algo::Auto,
            Some(Json::Str(s)) => Algo::parse(s).ok_or_else(|| format!("unknown algo {s:?}"))?,
            Some(_) => return Err("\"algo\" must be a string".to_string()),
        };
        Ok(ServeRequest { id, request: EngineRequest { topics, k, algo } })
    }
}

fn push_id(out: &mut String, id: Option<u64>) {
    if let Some(id) = id {
        out.push_str(&format!("\"id\":{id},"));
    }
}

fn push_u32_array(out: &mut String, key: &str, items: impl Iterator<Item = u64>) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":[");
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item.to_string());
    }
    out.push(']');
}

/// Render a successful outcome as one protocol line (no trailing
/// newline).
pub fn render_outcome(id: Option<u64>, algo: Algo, outcome: &QueryOutcome) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    push_id(&mut out, id);
    out.push_str(&format!("\"algo\":\"{algo}\","));
    push_u32_array(&mut out, "seeds", outcome.seeds.iter().map(|&s| s as u64));
    out.push(',');
    push_u32_array(&mut out, "marginal_gains", outcome.marginal_gains.iter().copied());
    out.push_str(&format!(
        ",\"coverage\":{},\"estimated_influence\":{:.6},\"theta_q\":{},\
         \"rr_sets_loaded\":{},\"elapsed_us\":{}}}",
        outcome.coverage,
        outcome.estimated_influence,
        outcome.stats.theta_q,
        outcome.stats.rr_sets_loaded,
        outcome.stats.elapsed.as_micros(),
    ));
    out
}

/// Render an error as one protocol line (no trailing newline).
pub fn render_error(id: Option<u64>, message: &str) -> String {
    let mut out = String::with_capacity(64);
    out.push('{');
    push_id(&mut out, id);
    out.push_str("\"error\":");
    escape_into(message, &mut out);
    out.push('}');
    out
}

/// Handle one protocol line end to end: parse, query, render. Never
/// panics on malformed input — every failure becomes an `error`
/// response.
pub fn handle_line(engine: &QueryEngine, line: &str) -> String {
    let parsed = match ServeRequest::parse(line) {
        Ok(parsed) => parsed,
        Err(msg) => {
            // Best-effort id recovery so pipelined clients can still
            // attribute the error line (validation failures — unknown
            // field, bad k — happen on perfectly parseable JSON).
            let id = Json::parse(line).ok().and_then(|json| json.get("id").and_then(Json::as_u64));
            return render_error(id, &msg);
        }
    };
    match engine.query(&parsed.request) {
        Ok(outcome) => render_outcome(parsed.id, parsed.request.algo, &outcome),
        Err(err) => render_error(parsed.id, &err.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_scalar_round_trips() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse(r#""hi\nthere""#).unwrap(), Json::Str("hi\nthere".to_string()));
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::Str("A".to_string()));
        assert_eq!(Json::parse(r#""héllo""#).unwrap(), Json::Str("héllo".to_string()));
    }

    #[test]
    fn json_compound_values() {
        let v = Json::parse(r#"{"a": [1, 2], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Str("d".to_string())));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn json_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "{\"a\":1,\"a\":2}", "\"x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn request_parsing() {
        let req = ServeRequest::parse(r#"{"id":3,"topics":[0,5],"k":8,"algo":"irr"}"#).unwrap();
        assert_eq!(req.id, Some(3));
        assert_eq!(req.request.topics, vec![0, 5]);
        assert_eq!(req.request.k, 8);
        assert_eq!(req.request.algo, Algo::Irr);

        // Defaults: k = 10, algo = auto, id omitted.
        let req = ServeRequest::parse(r#"{"topics":[2]}"#).unwrap();
        assert_eq!(req.id, None);
        assert_eq!(req.request.k, 10);
        assert_eq!(req.request.algo, Algo::Auto);
    }

    #[test]
    fn request_rejects_bad_fields() {
        for bad in [
            r#"{"k":5}"#,                       // missing topics
            r#"{"topics":[0],"k":0}"#,          // zero k
            r#"{"topics":[0],"algo":"fast"}"#,  // unknown algo
            r#"{"topics":"0"}"#,                // topics not an array
            r#"{"topics":[0.5]}"#,              // fractional topic
            r#"{"topics":[0],"frobnicate":1}"#, // unknown field
            r#"[0,1]"#,                         // not an object
        ] {
            assert!(ServeRequest::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn responses_are_parseable_json() {
        let rendered = render_error(Some(9), "no \"such\" index\n");
        let back = Json::parse(&rendered).unwrap();
        assert_eq!(back.get("id").unwrap().as_u64(), Some(9));
        assert_eq!(back.get("error"), Some(&Json::Str("no \"such\" index\n".to_string())));
    }
}
