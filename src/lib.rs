//! # kbtim — Real-time Targeted Influence Maximization
//!
//! A Rust reproduction of *"Real-time Targeted Influence Maximization for
//! Online Advertisements"* (Li, Zhang, Tan — PVLDB 8(10), 2015).
//!
//! The paper introduces the **KB-TIM** query: given a social network whose
//! users carry sparse topic profiles, find the `k` seed users maximizing the
//! expected influence *over users relevant to a given advertisement*. This
//! facade crate re-exports the workspace:
//!
//! * [`graph`] — CSR social graph, generators, degree statistics.
//! * [`topics`] — tf-idf user profiles, queries, workload generation.
//! * [`propagation`] — IC / LT / triggering models, RR-set sampling,
//!   Monte-Carlo spread estimation.
//! * [`core`] — WRIS / RIS samplers, greedy maximum coverage, θ bounds,
//!   OPT estimation and the in-memory query engine.
//! * [`index`] — the disk-based RR and IRR indexes (the paper's real-time
//!   query path).
//! * [`datagen`] — synthetic news-like / twitter-like dataset families.
//! * [`codec`] / [`storage`] — integer compression and segment-file
//!   substrates.
//!
//! ## Quickstart
//!
//! ```
//! use kbtim::datagen::{DatasetConfig, DatasetFamily};
//! use kbtim::topics::Query;
//! use kbtim::core::{KbTimEngine, SamplingConfig};
//!
//! // A small news-like dataset (graph + profiles), deterministic seed.
//! let data = DatasetConfig::family(DatasetFamily::News)
//!     .num_users(400)
//!     .num_topics(8)
//!     .seed(7)
//!     .build();
//!
//! // Online WRIS engine (the paper's baseline solution).
//! let config = SamplingConfig { theta_cap: Some(2_000), ..SamplingConfig::fast() };
//! let engine = KbTimEngine::new(&data.graph, &data.profiles, config);
//! let query = Query::new([0, 1], 10);
//! let result = engine.wris(&query, &mut rand::thread_rng());
//! assert!(!result.seeds.is_empty() && result.seeds.len() <= 10);
//! assert!(result.estimated_influence > 0.0);
//! ```
//!
//! For the real-time path, build a disk index once with
//! [`index::IndexBuilder`] and answer queries with
//! [`index::KbtimIndex::query_rr`] (Algorithm 2),
//! [`index::KbtimIndex::query_irr`] (Algorithm 4), or
//! [`index::KbtimIndex::query_auto`] — see `examples/`. A zero-I/O
//! serving copy is available as [`index::MemoryIndex`], classic IM
//! baselines (CELF, degree heuristics) live in
//! [`core::baselines`], and the `kbtim` binary
//! drives everything from the shell.
//!
//! For *concurrent* serving, share one index through an
//! `Arc<KbtimIndex>` behind [`index::QueryEngine`] (identical in-flight
//! requests coalesce to one execution), open it with
//! [`index::KbtimIndex::open_shared`] so resident segment pages dedupe
//! through the process-wide [`storage::PageCache`], and speak the
//! [`serve`] line-JSON protocol via `kbtim serve` (stdin/stdout or
//! TCP). Concurrent answers are bit-identical to serial execution for
//! any interleaving, backend and thread count.

pub mod serve;

pub use kbtim_codec as codec;
pub use kbtim_core as core;
pub use kbtim_datagen as datagen;
pub use kbtim_fault as fault;
pub use kbtim_graph as graph;
pub use kbtim_index as index;
pub use kbtim_propagation as propagation;
pub use kbtim_storage as storage;
pub use kbtim_topics as topics;
