//! Line-delimited JSON serving tier of `kbtim serve` — the normative
//! protocol specification lives in `docs/PROTOCOL.md`; this module tree
//! implements it.
//!
//! One request per line in, one response per line out — over
//! stdin/stdout or a TCP connection, the same bytes either way. The
//! protocol is deliberately small and self-contained (the workspace
//! vendors no JSON crate, so a subset parser lives in the private
//! `json` module, surfaced as [`Json`]):
//!
//! ```text
//! → {"id": 7, "index": "sports", "topics": [0, 1], "k": 10, "algo": "irr"}
//! ← {"id":7,"index":"sports","algo":"irr","seeds":[83,411],
//!    "marginal_gains":[52,40],"coverage":92,"estimated_influence":14.25,
//!    "theta_q":1800,"rr_sets_loaded":240,"shards":1,"elapsed_us":913}
//! ```
//!
//! Request fields: `topics` (array of topic ids, required), `k` (seed
//! count, default 10), `algo` (`rr` / `irr` / `auto` / `memory`, default
//! `auto`), `index` (which served index answers, default the server's
//! first — see [`Router`]), `id` (optional echo token for matching
//! responses to pipelined requests). Unknown fields are rejected — a
//! typo'd `"indx"` must fail loudly, not route to the default index.
//!
//! Indexes served with a mutable delta tier (`kbtim serve --data`)
//! additionally accept mutation verbs through the `op` field
//! (`ingest_user` / `ingest_edge` / `set_topic_weight` / `flush` — see
//! [`ServeOp`]); their responses and every query response against such
//! an index carry the tier's `generation` counter, so clients can tell
//! exactly which logical content answered.
//!
//! Errors come back on the same line protocol as structured objects:
//! `{"id":7,"error":"...","code":"unknown_field"}` — `code` is a stable
//! machine-readable discriminant (see [`ServeError`]), `error` the
//! human-readable message. A malformed line never kills the connection.
//!
//! The tree splits along the serving layers:
//!
//! * `json` — the JSON subset parser and escaper ([`Json`]);
//! * `framer` — bounded line framing ([`read_bounded_line`] for
//!   blocking readers, [`LineFramer`] for nonblocking chunks);
//! * this module — requests, routing, admission/drain books
//!   ([`ServeCtx`]), response rendering, and the per-line pipeline
//!   ([`handle_line_ctx`]);
//! * [`threads`] — the portable thread-per-connection TCP front end;
//! * [`epoll`] — the Linux epoll front end: one event-loop thread
//!   multiplexing every connection nonblocking, pipelined requests
//!   fairly dequeued (per connection × index) into a fixed worker pool
//!   (`dispatch`), completions handed back over an eventfd (`sys`);
//! * [`term_signal`] — the process-wide SIGTERM/SIGINT drain latch both
//!   front ends poll.

#[cfg(target_os = "linux")]
mod conn;
#[cfg(target_os = "linux")]
mod dispatch;
pub mod epoll;
mod framer;
mod json;
#[cfg(target_os = "linux")]
mod sys;
pub mod term_signal;
pub mod threads;

pub use epoll::{serve_epoll, EpollConfig};
pub use framer::{read_bounded_line, FramedLine, LineFramer, LineRead};
pub use json::Json;
pub use threads::serve_threads;

use json::escape_into;
use kbtim_index::{Algo, EngineRequest, IndexError, Mutation, QueryEngine, QueryOutcome};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A structured protocol error: a stable machine-readable `code` plus a
/// human-readable `message`, rendered as
/// `{"error":"<message>","code":"<code>"}`.
///
/// Codes (normative list in `docs/PROTOCOL.md`):
///
/// * `parse_error` — the line is not valid JSON;
/// * `unknown_field` — the request object carries a top-level key the
///   protocol does not define (typo guard: `"indx"` fails loudly);
/// * `bad_request` — a defined field has the wrong type or an invalid
///   value (missing `topics`, zero `k`, unknown `algo`, …);
/// * `unknown_index` — the `index` field names no served index;
/// * `engine_error` — the query itself failed inside the engine;
/// * `overloaded` — the request was shed: the in-flight count already
///   sits at `--max-queue`, or (epoll front end) the connection's
///   pipeline or outbox is full (load-shed, retry later);
/// * `deadline_exceeded` — the request's deadline (its `deadline_ms`
///   field, or the server's `--deadline-ms` default) passed before the
///   query finished;
/// * `shutting_down` — the server is draining after SIGTERM/stdin-EOF
///   and accepts no new work;
/// * `internal_error` — the query panicked; the panic was contained
///   and the connection survives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Stable machine-readable discriminant (`snake_case`).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl ServeError {
    fn parse(message: impl Into<String>) -> ServeError {
        ServeError { code: "parse_error", message: message.into() }
    }

    fn bad(message: impl Into<String>) -> ServeError {
        ServeError { code: "bad_request", message: message.into() }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.code)
    }
}

impl std::error::Error for ServeError {}

/// What a protocol line asks the server to do. The default (no `"op"`
/// field) is a query — every pre-mutation client line keeps its exact
/// meaning. Mutation ops require the routed index to carry a mutable
/// delta tier (`kbtim serve --data`); against an immutable index they
/// fail with `bad_request`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeOp {
    /// Run the influence query in [`ServeRequest::request`].
    Query,
    /// Apply one mutation to the routed index's delta tier.
    Mutate(Mutation),
    /// Compact the routed index's delta tier into the next segment
    /// generation.
    Flush,
}

impl ServeOp {
    /// The protocol name of this op (the `"op"` field value).
    pub fn name(&self) -> &'static str {
        match self {
            ServeOp::Query => "query",
            ServeOp::Mutate(Mutation::IngestUser) => "ingest_user",
            ServeOp::Mutate(Mutation::IngestEdge { .. }) => "ingest_edge",
            ServeOp::Mutate(Mutation::SetTopicWeight { .. }) => "set_topic_weight",
            ServeOp::Flush => "flush",
        }
    }
}

/// A parsed serve request: the engine request plus the client's routing
/// and echo fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Echoed back verbatim in the response, if given.
    pub id: Option<u64>,
    /// Which served index answers (echoed back); `None` routes to the
    /// server's default (first) index.
    pub index: Option<String>,
    /// Per-request deadline in milliseconds from admission; `None`
    /// falls back to the server default (`--deadline-ms`). `0` means
    /// "already expired" and deterministically yields
    /// `deadline_exceeded`.
    pub deadline_ms: Option<u64>,
    /// What to do: query (the default) or a delta-tier mutation.
    pub op: ServeOp,
    /// The query to run ([`ServeOp::Query`] only; empty otherwise).
    pub request: EngineRequest,
}

impl ServeRequest {
    /// Parse one protocol line.
    pub fn parse(line: &str) -> Result<ServeRequest, ServeError> {
        let json = Json::parse(line).map_err(ServeError::parse)?;
        let Json::Obj(fields) = &json else {
            return Err(ServeError::bad("request must be a JSON object"));
        };
        for (key, _) in fields {
            if !matches!(
                key.as_str(),
                "id" | "index"
                    | "topics"
                    | "k"
                    | "algo"
                    | "deadline_ms"
                    | "op"
                    | "user"
                    | "from"
                    | "to"
                    | "topic"
                    | "weight"
            ) {
                return Err(ServeError {
                    code: "unknown_field",
                    message: format!("unknown field {key:?}"),
                });
            }
        }
        let id = match json.get("id") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| ServeError::bad("\"id\" must be a non-negative integer"))?,
            ),
        };
        let index = match json.get("index") {
            None => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(ServeError::bad("\"index\" must be a string")),
        };
        let deadline_ms = match json.get("deadline_ms") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                ServeError::bad("\"deadline_ms\" must be a non-negative integer")
            })?),
        };
        let op_name = match json.get("op") {
            None => "query",
            Some(Json::Str(s)) => s.as_str(),
            Some(_) => return Err(ServeError::bad("\"op\" must be a string")),
        };
        // Every defined field is tied to specific ops — a `"weight"` on
        // an `ingest_edge` is as much a client bug as a typo'd key, and
        // must fail loudly rather than be silently dropped.
        let allowed: &[&str] = match op_name {
            "query" => &["id", "index", "deadline_ms", "op", "topics", "k", "algo"],
            "ingest_user" | "flush" => &["id", "index", "deadline_ms", "op"],
            "ingest_edge" => &["id", "index", "deadline_ms", "op", "from", "to"],
            "set_topic_weight" => &["id", "index", "deadline_ms", "op", "user", "topic", "weight"],
            other => return Err(ServeError::bad(format!("unknown op {other:?}"))),
        };
        for (key, _) in fields {
            if !allowed.contains(&key.as_str()) {
                return Err(ServeError::bad(format!(
                    "field {key:?} is not valid for op {op_name:?}"
                )));
            }
        }
        let field_u32 = |key: &str| -> Result<u32, ServeError> {
            json.get(key)
                .ok_or_else(|| ServeError::bad(format!("op {op_name:?} requires {key:?}")))?
                .as_u64()
                .filter(|&v| v <= u32::MAX as u64)
                .map(|v| v as u32)
                .ok_or_else(|| {
                    ServeError::bad(format!("{key:?} must be a 32-bit non-negative integer"))
                })
        };
        let op = match op_name {
            "query" => ServeOp::Query,
            "ingest_user" => ServeOp::Mutate(Mutation::IngestUser),
            "flush" => ServeOp::Flush,
            "ingest_edge" => ServeOp::Mutate(Mutation::IngestEdge {
                from: field_u32("from")?,
                to: field_u32("to")?,
            }),
            "set_topic_weight" => {
                let weight = match json.get("weight") {
                    Some(&Json::Num(n)) if n >= 0.0 && (n as f32).is_finite() => n as f32,
                    Some(_) => {
                        return Err(ServeError::bad(
                            "\"weight\" must be a finite non-negative number",
                        ))
                    }
                    None => {
                        return Err(ServeError::bad(format!("op {op_name:?} requires \"weight\"")))
                    }
                };
                ServeOp::Mutate(Mutation::SetTopicWeight {
                    user: field_u32("user")?,
                    topic: field_u32("topic")?,
                    weight,
                })
            }
            _ => unreachable!("op names validated above"),
        };
        if !matches!(op, ServeOp::Query) {
            let request = EngineRequest { topics: Vec::new(), k: 1, algo: Algo::Auto };
            return Ok(ServeRequest { id, index, deadline_ms, op, request });
        }
        let topics_json =
            json.get("topics").ok_or_else(|| ServeError::bad("missing \"topics\""))?;
        let Json::Arr(items) = topics_json else {
            return Err(ServeError::bad("\"topics\" must be an array"));
        };
        let mut topics = Vec::with_capacity(items.len());
        for item in items {
            let id = item.as_u64().filter(|&t| t <= u32::MAX as u64);
            topics
                .push(id.ok_or_else(|| ServeError::bad("\"topics\" entries must be topic ids"))?
                    as u32);
        }
        let k = match json.get("k") {
            None => 10,
            Some(v) => v
                .as_u64()
                .filter(|&k| k > 0 && k <= u32::MAX as u64)
                .ok_or_else(|| ServeError::bad("\"k\" must be a positive integer"))?
                as u32,
        };
        let algo = match json.get("algo") {
            None => Algo::Auto,
            Some(Json::Str(s)) => {
                Algo::parse(s).ok_or_else(|| ServeError::bad(format!("unknown algo {s:?}")))?
            }
            Some(_) => return Err(ServeError::bad("\"algo\" must be a string")),
        };
        Ok(ServeRequest {
            id,
            index,
            deadline_ms,
            op: ServeOp::Query,
            request: EngineRequest { topics, k, algo },
        })
    }

    /// Best-effort id recovery from a line that failed to parse as a
    /// request — validation failures (unknown field, bad `k`) happen on
    /// perfectly parseable JSON, and pipelined clients still need to
    /// attribute the error line.
    pub fn recover_id(line: &str) -> Option<u64> {
        Json::parse(line).ok().and_then(|json| json.get("id").and_then(Json::as_u64))
    }
}

/// Multi-index routing: one serve process, many named indexes, one
/// engine each — all behind the process-wide
/// [`kbtim_index::PageCache`], so indexes sharing segment files share
/// their resident pages.
///
/// The first registered index is the **default route**: requests
/// without an `"index"` field go there, which keeps single-index
/// deployments (and PR-4-era clients) working unchanged. An `"index"`
/// naming no registered engine gets an `unknown_index` error naming the
/// served indexes.
pub struct Router {
    engines: Vec<(String, Arc<QueryEngine>)>,
}

impl Router {
    /// A single-index router: `engine` becomes the default route under
    /// the name `"default"`.
    pub fn single(engine: Arc<QueryEngine>) -> Router {
        Router { engines: vec![("default".to_string(), engine)] }
    }

    /// An empty router; add routes with [`Router::add`]. At least one
    /// route must exist before serving.
    pub fn new() -> Router {
        Router { engines: Vec::new() }
    }

    /// Register `engine` under `name`. The first registration is the
    /// default route. Duplicate names are an error.
    pub fn add(&mut self, name: impl Into<String>, engine: Arc<QueryEngine>) -> Result<(), String> {
        let name = name.into();
        if name.is_empty() {
            return Err("index name must not be empty".to_string());
        }
        if self.engines.iter().any(|(n, _)| *n == name) {
            return Err(format!("duplicate index name {name:?}"));
        }
        self.engines.push((name, engine));
        Ok(())
    }

    /// Resolve a request's routing field: `None` routes to the default
    /// (first) index, `Some(name)` to the engine of that name.
    pub fn engine(&self, index: Option<&str>) -> Option<&Arc<QueryEngine>> {
        self.resolve(index).map(|id| self.engine_at(id))
    }

    /// Resolve a routing field to a stable route id (the index's
    /// position in registration order), for callers that queue work per
    /// route — the epoll dispatcher keys its fair queues on it.
    pub fn resolve(&self, index: Option<&str>) -> Option<usize> {
        match index {
            None => (!self.engines.is_empty()).then_some(0),
            Some(name) => self.engines.iter().position(|(n, _)| n == name),
        }
    }

    /// The engine of route `id` (ids come from [`Router::resolve`]).
    pub fn engine_at(&self, id: usize) -> &Arc<QueryEngine> {
        &self.engines[id].1
    }

    /// The name of route `id` (ids come from [`Router::resolve`]).
    pub fn name_at(&self, id: usize) -> &str {
        &self.engines[id].0
    }

    /// Registered index names, in registration (routing-priority) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.engines.iter().map(|(n, _)| n.as_str())
    }

    /// Number of served indexes.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether no index is registered yet.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }
}

impl Default for Router {
    fn default() -> Router {
        Router::new()
    }
}

/// Shared serving state for overload control and graceful drain: the
/// shutdown flag, the bounded admission count, the default deadline,
/// and the served/shed/failed books reported at exit.
///
/// One `ServeCtx` spans every connection of a serve process; handlers
/// thread `&ServeCtx` into [`handle_line_ctx`]. All state is atomic —
/// no locks, so a panicking request cannot poison admission control.
#[derive(Debug)]
pub struct ServeCtx {
    shutdown: AtomicBool,
    inflight: AtomicUsize,
    /// Admission bound: requests beyond this many in flight are shed
    /// with `overloaded`. `0` rejects everything (useful in tests);
    /// `usize::MAX` disables shedding.
    max_inflight: usize,
    /// Default deadline applied when a request carries no
    /// `deadline_ms` field; `None` means unbounded.
    default_deadline: Option<Duration>,
    /// Active front-end name (`"epoll"` / `"threads"` / `"stdin"`),
    /// reported in every response; `None` (the library default) omits
    /// the field.
    front_end: Option<&'static str>,
    served: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    panicked: AtomicU64,
}

impl ServeCtx {
    /// A context with the given admission bound and default deadline.
    pub fn new(max_inflight: usize, default_deadline: Option<Duration>) -> ServeCtx {
        ServeCtx {
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            max_inflight,
            default_deadline,
            front_end: None,
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
        }
    }

    /// No admission bound, no default deadline — the PR-4-era serving
    /// behaviour.
    pub fn unlimited() -> ServeCtx {
        ServeCtx::new(usize::MAX, None)
    }

    /// Name the active front end; every response rendered under this
    /// context carries it as a `front_end` field.
    pub fn with_front_end(mut self, name: &'static str) -> ServeCtx {
        self.front_end = Some(name);
        self
    }

    /// The active front-end name, if one was set.
    pub fn front_end(&self) -> Option<&'static str> {
        self.front_end
    }

    /// Flip the shutdown flag: new requests get `shutting_down`,
    /// in-flight ones run to completion. Idempotent.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether [`ServeCtx::begin_shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests currently admitted and not yet answered.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// The admission bound (`--max-queue`).
    pub fn admission_bound(&self) -> usize {
        self.max_inflight
    }

    /// CAS one admission slot; a `true` must be paired with a permit
    /// that releases the slot on drop.
    fn try_reserve(&self) -> bool {
        let mut cur = self.inflight.load(Ordering::SeqCst);
        loop {
            if cur >= self.max_inflight {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Try to admit one request; `None` means the queue is full and
    /// the caller must shed. The permit releases the slot on drop —
    /// including on panic, so containment never leaks admission slots.
    fn admit(&self) -> Option<AdmissionPermit<'_>> {
        self.try_reserve().then_some(AdmissionPermit { ctx: self })
    }

    /// [`ServeCtx::admit`] for callers that queue the request rather
    /// than run it on the spot: the permit owns an `Arc` to the
    /// context, so it travels with the request to a worker thread and
    /// releases the slot wherever the request ends — completion, shed,
    /// or a connection dying under it.
    pub(crate) fn admit_owned(self: &Arc<Self>) -> Option<OwnedPermit> {
        self.try_reserve().then(|| OwnedPermit { ctx: Arc::clone(self) })
    }

    /// The effective deadline of a request admitted *now*: its own
    /// `deadline_ms` if present, else the context default. `Some(0)`
    /// yields an already-expired instant, deterministically.
    pub(crate) fn request_deadline(&self, deadline_ms: Option<u64>) -> Option<Instant> {
        let budget_ms = deadline_ms.or_else(|| {
            self.default_deadline.map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        });
        budget_ms.map(|ms| Instant::now() + Duration::from_millis(ms))
    }

    /// Final stats line for the operator log, rendered at drain.
    pub fn stats_line(&self) -> String {
        format!(
            "served={} shed={} deadline_exceeded={} failed={} panicked={}",
            self.served.load(Ordering::SeqCst),
            self.shed.load(Ordering::SeqCst),
            self.expired.load(Ordering::SeqCst),
            self.failed.load(Ordering::SeqCst),
            self.panicked.load(Ordering::SeqCst),
        )
    }

    /// Successfully answered requests.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::SeqCst)
    }

    /// Requests shed by admission control or the shutdown gate.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::SeqCst)
    }

    pub(crate) fn count_served(&self) {
        self.served.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn count_shed(&self) {
        self.shed.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn count_expired(&self) {
        self.expired.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn count_failed(&self) {
        self.failed.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn count_panicked(&self) {
        self.panicked.fetch_add(1, Ordering::SeqCst);
    }
}

/// RAII admission slot: decrements the in-flight count on drop.
struct AdmissionPermit<'a> {
    ctx: &'a ServeCtx,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.ctx.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Owned admission slot for queued requests: travels with the request
/// from the event loop to the worker that answers it, releasing the
/// slot on drop wherever that happens.
#[derive(Debug)]
pub(crate) struct OwnedPermit {
    ctx: Arc<ServeCtx>,
}

impl Drop for OwnedPermit {
    fn drop(&mut self) {
        self.ctx.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn push_id(out: &mut String, id: Option<u64>) {
    if let Some(id) = id {
        out.push_str(&format!("\"id\":{id},"));
    }
}

fn push_u32_array(out: &mut String, key: &str, items: impl Iterator<Item = u64>) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":[");
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item.to_string());
    }
    out.push(']');
}

/// Render a successful outcome as one protocol line (no trailing
/// newline). `index` is the request's routing field, echoed back when
/// present; `shards` is the answering index's shard count (1 for the
/// flat layout), so clients can see when scatter-gather was in play;
/// `generation` is the answering index's delta-tier generation
/// ([`QueryEngine::generation`]) and is omitted for immutable indexes;
/// `front_end` names the serving front end ([`ServeCtx::front_end`])
/// and is omitted when `None`.
pub fn render_outcome(
    id: Option<u64>,
    index: Option<&str>,
    algo: Algo,
    outcome: &QueryOutcome,
    shards: usize,
    generation: Option<u64>,
    front_end: Option<&str>,
) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    push_id(&mut out, id);
    if let Some(index) = index {
        out.push_str("\"index\":");
        escape_into(index, &mut out);
        out.push(',');
    }
    out.push_str(&format!("\"algo\":\"{algo}\","));
    push_u32_array(&mut out, "seeds", outcome.seeds.iter().map(|&s| s as u64));
    out.push(',');
    push_u32_array(&mut out, "marginal_gains", outcome.marginal_gains.iter().copied());
    out.push_str(&format!(
        ",\"coverage\":{},\"estimated_influence\":{:.6},\"theta_q\":{},\
         \"rr_sets_loaded\":{},\"shards\":{shards}",
        outcome.coverage,
        outcome.estimated_influence,
        outcome.stats.theta_q,
        outcome.stats.rr_sets_loaded,
    ));
    if let Some(generation) = generation {
        out.push_str(&format!(",\"generation\":{generation}"));
    }
    if let Some(front_end) = front_end {
        out.push_str(",\"front_end\":");
        escape_into(front_end, &mut out);
    }
    out.push_str(&format!(",\"elapsed_us\":{}}}", outcome.stats.elapsed.as_micros()));
    out
}

/// Render a successful mutation acknowledgement as one protocol line
/// (no trailing newline):
/// `{"id":…,"op":"ingest_edge","generation":…,"unflushed":…}` —
/// `generation` is the delta tier's mutation generation after the op,
/// `unflushed` the journaled mutations still awaiting compaction.
pub fn render_mutation(
    id: Option<u64>,
    index: Option<&str>,
    op: &str,
    generation: u64,
    unflushed: u64,
    front_end: Option<&str>,
) -> String {
    let mut out = String::with_capacity(64);
    out.push('{');
    push_id(&mut out, id);
    if let Some(index) = index {
        out.push_str("\"index\":");
        escape_into(index, &mut out);
        out.push(',');
    }
    out.push_str(&format!("\"op\":\"{op}\",\"generation\":{generation},\"unflushed\":{unflushed}"));
    if let Some(front_end) = front_end {
        out.push_str(",\"front_end\":");
        escape_into(front_end, &mut out);
    }
    out.push('}');
    out
}

/// Render a structured error as one protocol line (no trailing
/// newline): `{"id":…,"error":"<message>","code":"<code>"}`, plus a
/// `front_end` field when one is given ([`ServeCtx::front_end`]).
pub fn render_error(id: Option<u64>, code: &str, message: &str, front_end: Option<&str>) -> String {
    let mut out = String::with_capacity(64);
    out.push('{');
    push_id(&mut out, id);
    out.push_str("\"error\":");
    escape_into(message, &mut out);
    out.push_str(",\"code\":");
    escape_into(code, &mut out);
    if let Some(front_end) = front_end {
        out.push_str(",\"front_end\":");
        escape_into(front_end, &mut out);
    }
    out.push('}');
    out
}

/// Handle one protocol line end to end: parse, route, query, render.
/// Never panics on malformed input — every failure becomes a structured
/// `error` response. Uses an unlimited [`ServeCtx`] (no admission
/// bound, no default deadline); servers with overload control call
/// [`handle_line_ctx`] directly.
pub fn handle_line(router: &Router, line: &str) -> String {
    handle_line_ctx(router, &ServeCtx::unlimited(), line)
}

/// [`handle_line`] with shared serving state: shutdown gate, bounded
/// admission, deadlines, and panic containment, in that order:
///
/// 1. parse (a malformed line costs no admission slot);
/// 2. `shutting_down` if the context is draining;
/// 3. `overloaded` if the in-flight count is at the bound;
/// 4. route (`unknown_index`);
/// 5. compute the deadline — the request's `deadline_ms`, else the
///    context default — and reject already-expired ones;
/// 6. run the query under `catch_unwind`: a panic becomes
///    `internal_error` and the worker/connection survives.
pub fn handle_line_ctx(router: &Router, ctx: &ServeCtx, line: &str) -> String {
    let fe = ctx.front_end();
    let parsed = match ServeRequest::parse(line) {
        Ok(parsed) => parsed,
        Err(err) => {
            let id = ServeRequest::recover_id(line);
            ctx.count_failed();
            return render_error(id, err.code, &err.message, fe);
        }
    };
    if ctx.is_shutting_down() {
        ctx.count_shed();
        return render_error(
            parsed.id,
            "shutting_down",
            "server is draining; request rejected",
            fe,
        );
    }
    let Some(_permit) = ctx.admit() else {
        ctx.count_shed();
        return render_error(
            parsed.id,
            "overloaded",
            &format!("admission queue full ({} in flight)", ctx.max_inflight),
            fe,
        );
    };
    let Some(engine) = router.engine(parsed.index.as_deref()) else {
        ctx.count_failed();
        return render_unknown_index(router, ctx, &parsed);
    };
    let deadline = ctx.request_deadline(parsed.deadline_ms);
    execute_rendered(engine, ctx, &parsed, deadline)
}

/// The `unknown_index` response, naming the served indexes.
pub(crate) fn render_unknown_index(
    router: &Router,
    ctx: &ServeCtx,
    parsed: &ServeRequest,
) -> String {
    let known: Vec<&str> = router.names().collect();
    render_error(
        parsed.id,
        "unknown_index",
        &format!(
            "unknown index {:?} (serving: {})",
            parsed.index.as_deref().unwrap_or_default(),
            known.join(", ")
        ),
        ctx.front_end(),
    )
}

/// Execute an already-admitted, already-routed request and render the
/// response — the shared tail of [`handle_line_ctx`] and the epoll
/// dispatcher. Checks the (pre-computed) deadline, runs the query under
/// `catch_unwind`, and books the outcome on `ctx`.
pub(crate) fn execute_rendered(
    engine: &QueryEngine,
    ctx: &ServeCtx,
    parsed: &ServeRequest,
    deadline: Option<Instant>,
) -> String {
    if deadline.is_some_and(|d| Instant::now() >= d) {
        ctx.count_expired();
        return render_error(
            parsed.id,
            "deadline_exceeded",
            "deadline expired at admission",
            ctx.front_end(),
        );
    }
    if !matches!(parsed.op, ServeOp::Query) {
        return execute_mutation(engine, ctx, parsed);
    }
    // The engine already contains panics per flight internally, but it
    // re-raises them to the submitting thread; this boundary is what
    // turns them into a structured response instead of a dead
    // connection.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.query_deadline(&parsed.request, deadline)
    }));
    render_result(engine, ctx, parsed, result)
}

/// Execute a mutation op against the routed engine's delta tier and
/// render the acknowledgement. Mutations never batch — each one runs
/// on the worker that dequeued it, serialized on the tier's writer
/// lane, and panics are contained exactly like query panics.
pub(crate) fn execute_mutation(
    engine: &QueryEngine,
    ctx: &ServeCtx,
    parsed: &ServeRequest,
) -> String {
    let fe = ctx.front_end();
    let Some(delta) = engine.delta() else {
        ctx.count_failed();
        return render_error(
            parsed.id,
            "bad_request",
            &format!(
                "op {:?} needs a mutable index (serve with --data); this index is immutable",
                parsed.op.name()
            ),
            fe,
        );
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match parsed.op {
        ServeOp::Query => unreachable!("queries take the query path"),
        ServeOp::Mutate(m) => delta.apply(&[m]),
        ServeOp::Flush => delta.flush(),
    }));
    match result {
        Ok(Ok(_)) => {
            ctx.count_served();
            render_mutation(
                parsed.id,
                parsed.index.as_deref(),
                parsed.op.name(),
                delta.generation(),
                delta.unflushed(),
                fe,
            )
        }
        Ok(Err(err)) => {
            ctx.count_failed();
            render_error(parsed.id, "engine_error", &err.to_string(), fe)
        }
        Err(_) => {
            ctx.count_panicked();
            render_error(
                parsed.id,
                "internal_error",
                "mutation execution panicked; the fault was contained",
                fe,
            )
        }
    }
}

/// Render (and book) one engine result — shared by the per-request and
/// the batched-window execution paths. The outer `Result` is a
/// `catch_unwind` verdict: `Err` means the execution panicked (the
/// payload is dropped; the response says so).
pub(crate) fn render_result(
    engine: &QueryEngine,
    ctx: &ServeCtx,
    parsed: &ServeRequest,
    result: std::thread::Result<kbtim_index::EngineResult>,
) -> String {
    let fe = ctx.front_end();
    match result {
        Ok(Ok(outcome)) => {
            ctx.count_served();
            render_outcome(
                parsed.id,
                parsed.index.as_deref(),
                parsed.request.algo,
                &outcome,
                engine.index().num_shards(),
                engine.generation(),
                fe,
            )
        }
        Ok(Err(err)) => {
            if matches!(err.index_error(), IndexError::DeadlineExceeded) {
                ctx.count_expired();
                render_error(parsed.id, "deadline_exceeded", &err.to_string(), fe)
            } else {
                ctx.count_failed();
                render_error(parsed.id, "engine_error", &err.to_string(), fe)
            }
        }
        Err(_) => {
            ctx.count_panicked();
            render_error(
                parsed.id,
                "internal_error",
                "query execution panicked; the fault was contained",
                fe,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parsing() {
        let req = ServeRequest::parse(r#"{"id":3,"topics":[0,5],"k":8,"algo":"irr"}"#).unwrap();
        assert_eq!(req.id, Some(3));
        assert_eq!(req.index, None);
        assert_eq!(req.request.topics, vec![0, 5]);
        assert_eq!(req.request.k, 8);
        assert_eq!(req.request.algo, Algo::Irr);

        // Defaults: k = 10, algo = auto, id and index omitted.
        let req = ServeRequest::parse(r#"{"topics":[2]}"#).unwrap();
        assert_eq!(req.id, None);
        assert_eq!(req.index, None);
        assert_eq!(req.request.k, 10);
        assert_eq!(req.request.algo, Algo::Auto);

        // Routing field.
        let req = ServeRequest::parse(r#"{"index":"sports","topics":[2]}"#).unwrap();
        assert_eq!(req.index.as_deref(), Some("sports"));

        // An explicit op:query is the same request.
        let req = ServeRequest::parse(r#"{"op":"query","topics":[2]}"#).unwrap();
        assert_eq!(req.op, ServeOp::Query);
    }

    #[test]
    fn mutation_ops_parse() {
        let req = ServeRequest::parse(r#"{"id":1,"op":"ingest_user"}"#).unwrap();
        assert_eq!(req.op, ServeOp::Mutate(Mutation::IngestUser));
        assert_eq!(req.op.name(), "ingest_user");

        let req = ServeRequest::parse(r#"{"op":"ingest_edge","from":3,"to":9}"#).unwrap();
        assert_eq!(req.op, ServeOp::Mutate(Mutation::IngestEdge { from: 3, to: 9 }));

        let req =
            ServeRequest::parse(r#"{"op":"set_topic_weight","user":5,"topic":2,"weight":0.75}"#)
                .unwrap();
        assert_eq!(
            req.op,
            ServeOp::Mutate(Mutation::SetTopicWeight { user: 5, topic: 2, weight: 0.75 })
        );

        let req = ServeRequest::parse(r#"{"op":"flush","index":"news"}"#).unwrap();
        assert_eq!(req.op, ServeOp::Flush);
        assert_eq!(req.index.as_deref(), Some("news"));
    }

    #[test]
    fn mutation_ops_reject_bad_fields() {
        for (bad, code) in [
            (r#"{"op":"compact"}"#, "bad_request"), // unknown op
            (r#"{"op":7}"#, "bad_request"),         // op not a string
            (r#"{"op":"ingest_edge","from":1}"#, "bad_request"), // missing to
            (r#"{"op":"ingest_edge","from":1,"to":2,"weight":0.5}"#, "bad_request"),
            (r#"{"op":"ingest_user","topics":[0]}"#, "bad_request"), // query field on a write
            (r#"{"op":"set_topic_weight","user":1,"topic":0,"weight":-1}"#, "bad_request"),
            (r#"{"op":"set_topic_weight","user":1,"topic":0}"#, "bad_request"),
            (r#"{"op":"flush","k":3}"#, "bad_request"),
            (r#"{"op":"ingest_edge","from":1,"to":2,"frobnicate":1}"#, "unknown_field"),
        ] {
            let err = ServeRequest::parse(bad).expect_err(bad);
            assert_eq!(err.code, code, "{bad:?} → {err}");
        }
    }

    #[test]
    fn request_rejects_bad_fields() {
        for (bad, code) in [
            (r#"{"k":5}"#, "bad_request"),                      // missing topics
            (r#"{"topics":[0],"k":0}"#, "bad_request"),         // zero k
            (r#"{"topics":[0],"algo":"fast"}"#, "bad_request"), // unknown algo
            (r#"{"topics":"0"}"#, "bad_request"),               // topics not an array
            (r#"{"topics":[0.5]}"#, "bad_request"),             // fractional topic
            (r#"{"topics":[0],"index":7}"#, "bad_request"),     // index not a string
            (r#"{"topics":[0],"frobnicate":1}"#, "unknown_field"),
            (r#"{"topics":[0],"indx":"a"}"#, "unknown_field"), // the typo guard
            (r#"[0,1]"#, "bad_request"),                       // not an object
            (r#"{"topics":[0}"#, "parse_error"),               // malformed JSON
        ] {
            let err = ServeRequest::parse(bad).expect_err(bad);
            assert_eq!(err.code, code, "{bad:?} → {err}");
        }
    }

    #[test]
    fn responses_are_parseable_json() {
        let rendered = render_error(Some(9), "unknown_index", "no \"such\" index\n", None);
        let back = Json::parse(&rendered).unwrap();
        assert_eq!(back.get("id").unwrap().as_u64(), Some(9));
        assert_eq!(back.get("error"), Some(&Json::Str("no \"such\" index\n".to_string())));
        assert_eq!(back.get("code"), Some(&Json::Str("unknown_index".to_string())));
        assert_eq!(back.get("front_end"), None, "omitted unless the context names one");

        let rendered = render_error(None, "overloaded", "full", Some("epoll"));
        let back = Json::parse(&rendered).unwrap();
        assert_eq!(back.get("front_end"), Some(&Json::Str("epoll".to_string())));
    }

    #[test]
    fn router_routes_by_name_with_first_as_default() {
        use crate::core::theta::SamplingConfig;
        use crate::datagen::{DatasetConfig, DatasetFamily};
        use crate::index::{IndexBuildConfig, IndexBuilder, KbtimIndex};
        use crate::propagation::model::IcModel;
        use crate::storage::{IoStats, TempDir};

        let data =
            DatasetConfig::family(DatasetFamily::News).num_users(200).num_topics(3).seed(5).build();
        let model = IcModel::weighted_cascade(&data.graph);
        let config = IndexBuildConfig {
            sampling: SamplingConfig {
                theta_cap: Some(300),
                opt_initial_samples: 32,
                opt_max_rounds: 3,
                ..SamplingConfig::fast()
            },
            ..IndexBuildConfig::default()
        };
        let dir = TempDir::new("router-unit").unwrap();
        IndexBuilder::new(&model, &data.profiles, config).build(dir.path()).unwrap();
        let open = || {
            Arc::new(QueryEngine::new(Arc::new(
                KbtimIndex::open(dir.path(), IoStats::new()).unwrap(),
            )))
        };

        let empty = Router::new();
        assert!(empty.is_empty());
        assert!(empty.engine(None).is_none());
        assert!(empty.resolve(None).is_none());
        assert_eq!(Router::default().len(), 0);

        // Routing: first registration is the default route, names
        // select exactly their engine, unknown names miss.
        let (a, b) = (open(), open());
        let mut router = Router::new();
        router.add("alpha", Arc::clone(&a)).unwrap();
        router.add("beta", Arc::clone(&b)).unwrap();
        assert!(Arc::ptr_eq(router.engine(None).unwrap(), &a), "first added is the default");
        assert!(Arc::ptr_eq(router.engine(Some("alpha")).unwrap(), &a));
        assert!(Arc::ptr_eq(router.engine(Some("beta")).unwrap(), &b));
        assert!(router.engine(Some("gamma")).is_none());
        assert_eq!(router.resolve(None), Some(0));
        assert_eq!(router.resolve(Some("beta")), Some(1));
        assert_eq!(router.resolve(Some("gamma")), None);
        assert_eq!(router.name_at(1), "beta");
        assert!(Arc::ptr_eq(router.engine_at(0), &a));
        assert_eq!(router.names().collect::<Vec<_>>(), ["alpha", "beta"]);
        assert_eq!(router.len(), 2);
        assert!(router.add("alpha", Arc::clone(&b)).unwrap_err().contains("duplicate"));
        assert!(router.add("", Arc::clone(&b)).is_err(), "empty names rejected");

        // The single-index convenience form registers under "default".
        let single = Router::single(Arc::clone(&a));
        assert_eq!(single.len(), 1);
        assert!(Arc::ptr_eq(single.engine(None).unwrap(), &a));
        assert!(Arc::ptr_eq(single.engine(Some("default")).unwrap(), &a));
    }
}
