//! Process-wide SIGTERM/SIGINT latch for graceful drain. The handler
//! only flips an atomic (the one async-signal-safe thing it may do);
//! the serve loops poll it between requests / accepts / epoll wakes
//! (the signal also interrupts a blocked `epoll_wait` with `EINTR`, so
//! the epoll loop observes it promptly).

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATE: AtomicBool = AtomicBool::new(false);

/// Whether SIGTERM/SIGINT has arrived.
pub fn pending() -> bool {
    TERMINATE.load(Ordering::SeqCst)
}

/// Install the handlers. The workspace vendors no platform crates, so
/// this binds `signal(2)` directly, like the storage mmap shim.
#[cfg(unix)]
pub fn install() {
    extern "C" fn on_term(_sig: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_term` is async-signal-safe (a single atomic store)
    // and stays valid for the process lifetime; `signal(2)` itself has
    // no memory-safety preconditions.
    unsafe {
        signal(SIGTERM, on_term as *const () as usize);
        signal(SIGINT, on_term as *const () as usize);
    }
}

/// No-op off Unix: the drain channels are stdin EOF and process exit.
#[cfg(not(unix))]
pub fn install() {}
