//! Line framing with a hard per-line byte cap, in two shapes sharing
//! one semantics: [`read_bounded_line`] pulls from a blocking
//! `BufRead` (the stdin and thread-per-connection loops), while
//! [`LineFramer`] is fed whatever bytes a nonblocking read produced
//! (the epoll loop). Either way an oversized line — including a
//! hostile newline-free stream — costs at most the cap in buffering,
//! is reported once, and the stream resyncs at the next newline.

/// One line read from a bounded reader: see [`read_bounded_line`].
#[derive(Debug, PartialEq, Eq)]
pub enum LineRead {
    /// Clean end of stream (no partial line pending).
    Eof,
    /// One complete line, newline stripped (also returned for a final
    /// unterminated line at EOF).
    Line(String),
    /// The line exceeded the cap. Its bytes were consumed up to and
    /// including the next newline (or EOF), so the stream is resynced —
    /// answer with `bad_request` and keep reading.
    TooLong,
}

/// Read one `\n`-terminated line without ever buffering more than
/// `max_len` bytes of it — the fix for the unbounded `BufRead::lines`
/// loop a hostile client could feed gigabytes without a newline.
/// Oversized lines are consumed (not buffered) through their
/// terminating newline so the caller can shed one request and continue
/// with the next. Invalid UTF-8 is replaced, to be rejected by the JSON
/// parser downstream.
pub fn read_bounded_line<R: std::io::BufRead>(
    reader: &mut R,
    max_len: usize,
) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if overflow {
                LineRead::TooLong
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(finish_line(buf))
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflow && buf.len() + pos > max_len {
                    overflow = true;
                    buf.clear();
                } else if !overflow {
                    buf.extend_from_slice(&chunk[..pos]);
                }
                reader.consume(pos + 1);
                return Ok(if overflow {
                    LineRead::TooLong
                } else {
                    LineRead::Line(finish_line(buf))
                });
            }
            None => {
                let len = chunk.len();
                if !overflow && buf.len() + len > max_len {
                    overflow = true;
                    buf.clear();
                } else if !overflow {
                    buf.extend_from_slice(chunk);
                }
                reader.consume(len);
            }
        }
    }
}

fn finish_line(mut buf: Vec<u8>) -> String {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8_lossy(&buf).into_owned()
}

/// One framed line from a [`LineFramer`].
#[derive(Debug, PartialEq, Eq)]
pub enum FramedLine {
    /// A complete line, newline stripped (trailing `\r` too).
    Line(String),
    /// A line exceeded the cap; its bytes were discarded through the
    /// terminating newline and the stream is resynced. Answer with
    /// `bad_request` and keep framing.
    TooLong,
}

/// Incremental line framer for nonblocking reads: push whatever bytes
/// arrived, collect the complete lines they finished. Semantics match
/// [`read_bounded_line`] exactly — same cap, same
/// discard-through-newline resync, same lossy UTF-8 — which the
/// equivalence proptest in `tests/protocol.rs` pins down.
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    max_len: usize,
    /// Inside an oversized line: discard until the next newline, then
    /// report one `TooLong`.
    overflow: bool,
}

impl LineFramer {
    /// A framer enforcing `max_len` bytes per line (newline excluded).
    pub fn new(max_len: usize) -> LineFramer {
        LineFramer { buf: Vec::new(), max_len, overflow: false }
    }

    /// Feed `chunk` and append every line it completed to `out`.
    pub fn push(&mut self, chunk: &[u8], out: &mut Vec<FramedLine>) {
        let mut rest = chunk;
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            if !self.overflow && self.buf.len() + pos > self.max_len {
                self.overflow = true;
                self.buf.clear();
            } else if !self.overflow {
                self.buf.extend_from_slice(&rest[..pos]);
            }
            out.push(if self.overflow {
                FramedLine::TooLong
            } else {
                FramedLine::Line(finish_line(std::mem::take(&mut self.buf)))
            });
            self.overflow = false;
            rest = &rest[pos + 1..];
        }
        if !self.overflow && self.buf.len() + rest.len() > self.max_len {
            self.overflow = true;
            self.buf.clear();
        } else if !self.overflow {
            self.buf.extend_from_slice(rest);
        }
    }

    /// End of stream: the final unterminated line, if any. Mirrors
    /// [`read_bounded_line`]'s EOF arm.
    pub fn finish(&mut self) -> Option<FramedLine> {
        if self.overflow {
            self.overflow = false;
            Some(FramedLine::TooLong)
        } else if self.buf.is_empty() {
            None
        } else {
            Some(FramedLine::Line(finish_line(std::mem::take(&mut self.buf))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_all(framer: &mut LineFramer, chunks: &[&[u8]]) -> Vec<FramedLine> {
        let mut out = Vec::new();
        for chunk in chunks {
            framer.push(chunk, &mut out);
        }
        if let Some(last) = framer.finish() {
            out.push(last);
        }
        out
    }

    #[test]
    fn framer_reassembles_torn_lines() {
        let mut framer = LineFramer::new(64);
        let got = frame_all(&mut framer, &[b"{\"a\"", b":1}\n{\"b\":", b"2}\n", b"tail"]);
        assert_eq!(
            got,
            vec![
                FramedLine::Line("{\"a\":1}".into()),
                FramedLine::Line("{\"b\":2}".into()),
                FramedLine::Line("tail".into()),
            ]
        );
    }

    #[test]
    fn framer_caps_and_resyncs_like_the_reader() {
        // One oversized line (fed in pieces, none individually over the
        // cap) yields exactly one TooLong and the next line survives.
        let mut framer = LineFramer::new(8);
        let got = frame_all(&mut framer, &[b"0123", b"4567", b"89\nok\n"]);
        assert_eq!(got, vec![FramedLine::TooLong, FramedLine::Line("ok".into())]);

        // Unterminated overflow at EOF still reports once.
        let mut framer = LineFramer::new(4);
        let got = frame_all(&mut framer, &[b"toolongtail"]);
        assert_eq!(got, vec![FramedLine::TooLong]);

        // Exactly at the cap is fine; one byte over is not.
        let mut framer = LineFramer::new(9);
        let got = frame_all(&mut framer, &[b"nine char\n"]);
        assert_eq!(got, vec![FramedLine::Line("nine char".into())]);
        let mut framer = LineFramer::new(8);
        let got = frame_all(&mut framer, &[b"nine char\n"]);
        assert_eq!(got, vec![FramedLine::TooLong]);
    }

    #[test]
    fn framer_strips_crlf_and_replaces_bad_utf8() {
        let mut framer = LineFramer::new(64);
        let got = frame_all(&mut framer, &[b"a\r\n", &[0xff, 0xfe, b'\n']]);
        assert_eq!(
            got,
            vec![FramedLine::Line("a".into()), FramedLine::Line("\u{fffd}\u{fffd}".into())]
        );
    }
}
