//! The portable thread-per-connection TCP front end — the PR-7 serving
//! loop, moved out of the binary so both front ends live behind one
//! library surface and `--front-end threads` keeps working on every
//! platform the workspace builds on.
//!
//! One OS thread per connection, blocking reads, strictly serial per
//! connection: a request line is read only after the previous response
//! was written. Pipelining clients still *work* (the kernel buffers
//! their burst), but get no concurrency within a connection — that is
//! the epoll front end's job ([`super::epoll`]).

use super::term_signal;
use super::{handle_line_ctx, read_bounded_line, render_error, LineRead, Router, ServeCtx};
use std::io::{BufReader, Write};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serve `listener` until drain (SIGTERM/SIGINT, stdin EOF when
/// `watch_stdin`, or [`ServeCtx::begin_shutdown`] from elsewhere), one
/// thread per connection.
///
/// `watch_stdin` spawns the stdin watcher: EOF on stdin begins the
/// drain, giving supervisors a portable shutdown channel besides
/// SIGTERM. Pass `false` when stdin is not a meaningful channel — a
/// daemon started with stdin on `/dev/null` would otherwise drain
/// immediately (the caveat `docs/OPERATIONS.md` documents; the CLI
/// detects this case and disables the watcher).
///
/// Returns once the drain grace expires or every admitted request has
/// finished; the caller reports [`ServeCtx::stats_line`].
pub fn serve_threads(
    listener: TcpListener,
    router: Arc<Router>,
    ctx: Arc<ServeCtx>,
    max_line: usize,
    watch_stdin: bool,
    grace: Duration,
) -> std::io::Result<()> {
    // Nonblocking accept so the loop can poll the shutdown latch: a
    // blocked `accept(2)` would pin the process until one more client
    // happened to connect.
    listener.set_nonblocking(true)?;
    if watch_stdin {
        let ctx = Arc::clone(&ctx);
        std::thread::spawn(move || {
            use std::io::Read;
            let mut sink = [0u8; 4096];
            let mut stdin = std::io::stdin();
            loop {
                match stdin.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
            ctx.begin_shutdown();
        });
    }
    loop {
        if term_signal::pending() {
            ctx.begin_shutdown();
        }
        if ctx.is_shutting_down() {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            // Transient accept failures (a client resetting mid
            // handshake, fd exhaustion) must not take down every
            // established connection.
            Err(e) => {
                eprintln!("kbtim serve: accept error: {e}");
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        // The listener is nonblocking only for the poll loop;
        // per-connection reads stay blocking.
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        // One small response line per request is Nagle's worst case;
        // don't hold it back waiting for a piggyback ACK.
        let _ = stream.set_nodelay(true);
        let router = Arc::clone(&router);
        let ctx = Arc::clone(&ctx);
        // One thread per connection; all connections share the router's
        // engines (and therefore the indexes, their scratch pools, the
        // request coalescing and the batch planner) plus the
        // admission/drain context.
        std::thread::spawn(move || {
            let mut writer = match stream.try_clone() {
                Ok(w) => w,
                Err(_) => return,
            };
            let mut reader = BufReader::new(stream);
            loop {
                let response = match read_bounded_line(&mut reader, max_line) {
                    Err(_) | Ok(LineRead::Eof) => break,
                    Ok(LineRead::TooLong) => render_error(
                        None,
                        "bad_request",
                        &format!("request line exceeds {max_line} bytes"),
                        ctx.front_end(),
                    ),
                    Ok(LineRead::Line(line)) => {
                        let line = line.trim();
                        if line.is_empty() {
                            continue;
                        }
                        handle_line_ctx(&router, &ctx, line)
                    }
                };
                if writeln!(writer, "{response}").is_err() {
                    break;
                }
            }
        });
    }
    // Drain: stop accepting (done — the loop exited), let admitted
    // requests finish, then return. The grace bound keeps a wedged
    // query from pinning shutdown forever.
    let deadline = Instant::now() + grace;
    while ctx.inflight() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    Ok(())
}
