//! The Linux epoll front end: one event-loop thread multiplexing every
//! connection, pipelined requests fanned into a fixed worker pool.
//!
//! Layout of the machine:
//!
//! * **Event loop (this module)** — nonblocking accept, per-connection
//!   nonblocking reads through an incremental [`LineFramer`](super::LineFramer)
//!   (same cap/resync semantics as the blocking reader), response
//!   outboxes with `EPOLLOUT` re-arm, and the drain state machine.
//! * **Dispatch (`super::dispatch`)** — admitted requests enter a
//!   per-(connection × index) fair queue; workers dequeue windows and
//!   execute them, batching through
//!   [`kbtim_index::QueryEngine::query_window`] when the engine has a
//!   batch window configured (the ready queue *is* the admission
//!   window, so nobody condvar-sleeps to collect concurrency).
//! * **Hand-off (`super::sys`)** — workers push rendered responses into
//!   a [`kbtim_exec::CompletionQueue`] whose waker writes an
//!   `eventfd`, kicking `epoll_wait`; the loop drains completions in
//!   batches and routes each to its connection by id.
//!
//! Pipelining: a client may write many request lines without reading;
//! responses come back **in completion order**, matched by the echoed
//! `id` (normative semantics in `docs/PROTOCOL.md`). Backpressure is
//! per connection: at most `pipeline_depth` requests in flight —
//! beyond that, requests are shed with `overloaded` — and `outbox_cap`
//! bytes of unread responses, past which the loop *stops reading* the
//! connection (`EPOLLIN` drops until the outbox drains back under the
//! cap), so a client that pipelines without reading is throttled by
//! TCP instead of growing server memory without bound.
//!
//! Overload and drain books are the same [`ServeCtx`] the
//! thread-per-connection front end uses, so admission permits,
//! deadlines, failpoint containment, and the drained stats line work
//! unchanged across front ends.
//!
//! Connections are addressed by a **monotonic id**, never by fd: the
//! kernel reuses fds the moment a connection closes, and a completion
//! for a dead connection must be dropped, not delivered to whoever
//! inherited the number.

use super::Router;
use super::ServeCtx;
use std::io;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs of [`serve_epoll`]. Defaults match the CLI's.
#[derive(Debug, Clone)]
pub struct EpollConfig {
    /// Accepted-connection cap; further connects get a best-effort
    /// `overloaded` line and are dropped (`--max-conns`).
    pub max_conns: usize,
    /// Kernel accept backlog (`listen(2)`), for connect bursts.
    pub backlog: i32,
    /// Worker threads executing queries; `0` = the machine's available
    /// parallelism.
    pub workers: usize,
    /// Per-connection outbox cap in bytes: beyond this many unread
    /// response bytes the loop stops reading the connection (read
    /// interest re-arms once the outbox drains), so unread responses
    /// become TCP backpressure on the client, not server memory.
    pub outbox_cap: usize,
    /// Per-request line cap (`--max-line`), enforced by the framer.
    pub max_line: usize,
    /// Per-connection pipeline depth: at most this many requests in
    /// flight per connection; excess is shed with `overloaded`.
    pub pipeline_depth: usize,
    /// Drain grace: after shutdown begins, in-flight work gets this
    /// long to finish before the loop gives up.
    pub grace: Duration,
    /// Watch stdin for EOF as a drain channel (the supervisor-pipe
    /// contract). The CLI enables this only when stdin is a pipe or
    /// socket, so a daemon with stdin on `/dev/null` no longer drains
    /// immediately.
    pub watch_stdin: bool,
}

impl Default for EpollConfig {
    fn default() -> EpollConfig {
        EpollConfig {
            max_conns: 4096,
            backlog: 1024,
            workers: 0,
            outbox_cap: 256 * 1024,
            max_line: 1 << 20,
            pipeline_depth: 128,
            grace: Duration::from_secs(10),
            watch_stdin: false,
        }
    }
}

/// Serve `listener` on the epoll event loop until drain, then return
/// (the caller reports [`ServeCtx::stats_line`]). Linux only — other
/// platforms get `ErrorKind::Unsupported`, and the CLI falls back to
/// [`super::serve_threads`].
#[cfg(not(target_os = "linux"))]
pub fn serve_epoll(
    _listener: TcpListener,
    _router: Arc<Router>,
    _ctx: Arc<ServeCtx>,
    _cfg: EpollConfig,
) -> io::Result<()> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "the epoll front end is Linux-only; use the threads front end",
    ))
}

/// Serve `listener` on the epoll event loop until drain, then return
/// (the caller reports [`ServeCtx::stats_line`]).
#[cfg(target_os = "linux")]
pub fn serve_epoll(
    listener: TcpListener,
    router: Arc<Router>,
    ctx: Arc<ServeCtx>,
    cfg: EpollConfig,
) -> io::Result<()> {
    use std::os::unix::io::AsRawFd;

    let epoll = super::sys::Epoll::new()?;
    let wake = Arc::new(super::sys::EventFd::new()?);
    listener.set_nonblocking(true)?;
    super::sys::set_backlog(listener.as_raw_fd(), cfg.backlog)?;
    epoll.add(listener.as_raw_fd(), linux::TOK_LISTENER)?;
    epoll.add(wake.as_raw_fd(), linux::TOK_WAKE)?;
    if cfg.watch_stdin {
        // Fails with EPERM when stdin is a regular file (epoll cannot
        // watch those); the drain channels are then SIGTERM and client
        // EOF only.
        let _ = epoll.add(0, linux::TOK_STDIN);
    }
    let workers = match cfg.workers {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    };
    let waker = {
        let wake = Arc::clone(&wake);
        move || wake.signal()
    };
    let dispatcher =
        super::dispatch::Dispatcher::new(Arc::clone(&router), Arc::clone(&ctx), workers, waker);
    linux::EventLoop {
        epoll,
        wake,
        listener,
        router,
        ctx,
        cfg,
        dispatcher: Some(dispatcher),
        conns: std::collections::HashMap::new(),
        next_id: linux::FIRST_CONN,
        accepting: true,
        buf: vec![0u8; 64 * 1024],
        scratch: Vec::new(),
    }
    .run()
}

#[cfg(target_os = "linux")]
mod linux {
    use super::super::conn::Conn;
    use super::super::dispatch::{Dispatcher, Pending};
    use super::super::framer::FramedLine;
    use super::super::sys::{self, EpollEvent, EventFd};
    use super::super::term_signal;
    use super::super::{render_error, render_unknown_index, Router, ServeCtx, ServeRequest};
    use super::EpollConfig;
    use std::collections::HashMap;
    use std::io::{self, Read, Write};
    use std::net::TcpListener;
    use std::os::unix::io::AsRawFd;
    use std::sync::Arc;
    use std::time::Instant;

    /// Fixed epoll tokens; connection ids start above them and only
    /// grow, so a token is never ambiguous.
    pub(super) const TOK_LISTENER: u64 = 0;
    pub(super) const TOK_WAKE: u64 = 1;
    pub(super) const TOK_STDIN: u64 = 2;
    pub(super) const FIRST_CONN: u64 = 3;

    pub(super) struct EventLoop {
        pub epoll: sys::Epoll,
        pub wake: Arc<EventFd>,
        pub listener: TcpListener,
        pub router: Arc<Router>,
        pub ctx: Arc<ServeCtx>,
        pub cfg: EpollConfig,
        /// `Option` so the drain tail can take it for `stop_and_join`.
        pub dispatcher: Option<Dispatcher>,
        pub conns: HashMap<u64, Conn>,
        pub next_id: u64,
        pub accepting: bool,
        /// Shared read scratch — one buffer for every connection, since
        /// reads happen one connection at a time on the loop thread.
        pub buf: Vec<u8>,
        /// Reusable completion drain buffer.
        pub scratch: Vec<(u64, String)>,
    }

    impl EventLoop {
        pub(super) fn run(mut self) -> io::Result<()> {
            let mut events = vec![EpollEvent::default(); 1024];
            let mut drain_deadline: Option<Instant> = None;
            // Cleared when the grace expires with work still pending:
            // the dispatcher then abandons its queue instead of
            // draining it, so a wedged query cannot pin shutdown.
            let mut graceful = true;
            loop {
                if term_signal::pending() {
                    self.ctx.begin_shutdown();
                }
                if self.ctx.is_shutting_down() && self.accepting {
                    // Drain begins: stop accepting; queued and in-flight
                    // requests finish, outboxes flush, then the loop
                    // exits (or the grace expires).
                    self.accepting = false;
                    let _ = self.epoll.del(self.listener.as_raw_fd());
                    drain_deadline = Some(Instant::now() + self.cfg.grace);
                }
                if let Some(deadline) = drain_deadline {
                    let dispatcher = self.dispatcher.as_ref().expect("dispatcher until drained");
                    let idle = dispatcher.queued() == 0
                        && self.ctx.inflight() == 0
                        && self.conns.values().all(Conn::done);
                    if idle {
                        break;
                    }
                    if Instant::now() >= deadline {
                        graceful = false;
                        break;
                    }
                }
                // The timeout bounds how stale a signal-only shutdown
                // can go unnoticed (a signal also interrupts the wait
                // with EINTR, reported as zero events).
                let n = self.epoll.wait(&mut events, 100)?;
                for event in &events[..n] {
                    // Copy out of the (packed) event before use.
                    let (token, bits) = (event.token, event.events);
                    match token {
                        TOK_LISTENER => self.accept_ready(),
                        TOK_WAKE => self.wake.drain(),
                        TOK_STDIN => self.stdin_ready(),
                        id => self.conn_ready(id, bits),
                    }
                }
                self.apply_completions();
            }
            // Drain tail: finish whatever is still queued (unless the
            // grace expired — then the queue is abandoned and its
            // permits released), deliver the final completions, flush
            // best-effort, report.
            if let Some(mut dispatcher) = self.dispatcher.take() {
                dispatcher.stop_and_join(graceful);
                self.scratch.clear();
                dispatcher.drain_completions(&mut self.scratch);
                let last = std::mem::take(&mut self.scratch);
                for (id, response) in last {
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.pending -= 1;
                        conn.enqueue_response(&response);
                    }
                }
            }
            let ids: Vec<u64> = self.conns.keys().copied().collect();
            for id in ids {
                self.flush_and_rearm(id);
            }
            Ok(())
        }

        /// Accept until the listener would block. Connections beyond
        /// the cap (or arriving mid-drain) get one best-effort error
        /// line on the still-blocking socket and are dropped.
        fn accept_ready(&mut self) {
            if !self.accepting {
                return;
            }
            loop {
                let stream = match self.listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        // Transient accept failures (a client resetting
                        // mid-handshake, fd exhaustion) must not take
                        // down every established connection.
                        eprintln!("kbtim serve: accept error: {e}");
                        break;
                    }
                };
                if self.ctx.is_shutting_down() {
                    self.ctx.count_shed();
                    let _ = writeln!(
                        &stream,
                        "{}",
                        render_error(
                            None,
                            "shutting_down",
                            "server is draining; connection rejected",
                            self.ctx.front_end(),
                        )
                    );
                    continue;
                }
                if self.conns.len() >= self.cfg.max_conns {
                    self.ctx.count_shed();
                    let _ = writeln!(
                        &stream,
                        "{}",
                        render_error(
                            None,
                            "overloaded",
                            &format!("connection limit reached ({} open)", self.cfg.max_conns),
                            self.ctx.front_end(),
                        )
                    );
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                // Pipelined line-JSON is exactly the traffic Nagle
                // penalizes: a response burst held back waiting for an
                // ACK the client's next request would carry anyway.
                let _ = stream.set_nodelay(true);
                let id = self.next_id;
                self.next_id += 1;
                if self.epoll.add(stream.as_raw_fd(), id).is_err() {
                    continue;
                }
                self.conns.insert(id, Conn::new(stream, self.cfg.max_line));
            }
        }

        /// Stdin readable: consume; EOF (or error) begins the drain.
        /// This replaces the dedicated stdin-watcher thread the
        /// thread-per-connection front end needs — here the latch is
        /// just another fd on the loop.
        fn stdin_ready(&mut self) {
            let mut sink = [0u8; 4096];
            match io::stdin().lock().read(&mut sink) {
                Ok(0) | Err(_) => {
                    let _ = self.epoll.del(0);
                    self.ctx.begin_shutdown();
                }
                Ok(_) => {}
            }
        }

        /// Readiness on a connection: read (and frame, and dispatch)
        /// whatever arrived, then flush whatever fits.
        fn conn_ready(&mut self, id: u64, bits: u32) {
            let readable =
                bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0;
            if readable && !self.read_ready(id) {
                self.close_conn(id);
                return;
            }
            self.flush_and_rearm(id);
        }

        /// Drain the socket's read side into the framer and process the
        /// completed lines, one chunk at a time so the outbox cap is
        /// honored *between* chunks: a connection whose outbox is over
        /// cap stops being read — the bytes stay in the kernel buffer
        /// and TCP pushes back on the client — and [`flush_and_rearm`]
        /// drops its `EPOLLIN` interest until the outbox drains back
        /// under the cap (a level-triggered `EPOLLIN` on data we refuse
        /// to read would otherwise spin). Returns `false` if the
        /// connection died.
        ///
        /// [`flush_and_rearm`]: EventLoop::flush_and_rearm
        fn read_ready(&mut self, id: u64) -> bool {
            let mut lines: Vec<FramedLine> = Vec::new();
            loop {
                lines.clear();
                let mut closed = false;
                {
                    let Some(conn) = self.conns.get_mut(&id) else {
                        return true;
                    };
                    if conn.read_closed || conn.outbox.len() > self.cfg.outbox_cap {
                        return true;
                    }
                    loop {
                        match conn.stream.read(&mut self.buf) {
                            Ok(0) => {
                                conn.read_closed = true;
                                if let Some(last) = conn.framer.finish() {
                                    lines.push(last);
                                }
                                closed = true;
                                break;
                            }
                            Ok(n) => {
                                conn.framer.push(&self.buf[..n], &mut lines);
                                break;
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(_) => return false,
                        }
                    }
                }
                for line in lines.drain(..) {
                    self.process_line(id, line);
                }
                if closed {
                    return true;
                }
            }
        }

        /// One framed request line: the epoll-side equivalent of
        /// [`super::super::handle_line_ctx`], with the execution
        /// detached — parse and admission happen here on the loop
        /// thread (cheap, and errors answer immediately), the query
        /// itself goes through the fair queue to a worker, and the
        /// response comes back as a completion.
        fn process_line(&mut self, id: u64, line: FramedLine) {
            let fe = self.ctx.front_end();
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            let line = match line {
                FramedLine::TooLong => {
                    conn.enqueue_response(&render_error(
                        None,
                        "bad_request",
                        &format!("request line exceeds {} bytes", self.cfg.max_line),
                        fe,
                    ));
                    return;
                }
                FramedLine::Line(line) => line,
            };
            let line = line.trim();
            if line.is_empty() {
                return;
            }
            let parsed = match ServeRequest::parse(line) {
                Ok(parsed) => parsed,
                Err(err) => {
                    self.ctx.count_failed();
                    let recovered = ServeRequest::recover_id(line);
                    conn.enqueue_response(&render_error(recovered, err.code, &err.message, fe));
                    return;
                }
            };
            if self.ctx.is_shutting_down() {
                self.ctx.count_shed();
                conn.enqueue_response(&render_error(
                    parsed.id,
                    "shutting_down",
                    "server is draining; request rejected",
                    fe,
                ));
                return;
            }
            // Per-connection backpressure, checked before the global
            // admission bound: a connection pipelining past its depth
            // or not reading its responses sheds *its own* requests
            // without eating global admission slots.
            if conn.pending >= self.cfg.pipeline_depth {
                self.ctx.count_shed();
                conn.enqueue_response(&render_error(
                    parsed.id,
                    "overloaded",
                    &format!("pipeline full ({} requests in flight)", self.cfg.pipeline_depth),
                    fe,
                ));
                return;
            }
            // Over-cap outboxes pause *reading* (see `read_ready`), so
            // this branch only fires for lines framed from the chunk
            // that pushed the outbox over — a bounded tail, not an
            // amplification loop: after this chunk the connection is
            // not read again until the client drains below the cap.
            if conn.outbox.len() > self.cfg.outbox_cap {
                self.ctx.count_shed();
                conn.enqueue_response(&render_error(
                    parsed.id,
                    "overloaded",
                    &format!("outbox full ({} bytes unread)", self.cfg.outbox_cap),
                    fe,
                ));
                return;
            }
            let Some(permit) = self.ctx.admit_owned() else {
                self.ctx.count_shed();
                conn.enqueue_response(&render_error(
                    parsed.id,
                    "overloaded",
                    &format!("admission queue full ({} in flight)", self.ctx.admission_bound()),
                    fe,
                ));
                return;
            };
            let Some(route) = self.router.resolve(parsed.index.as_deref()) else {
                self.ctx.count_failed();
                conn.enqueue_response(&render_unknown_index(&self.router, &self.ctx, &parsed));
                return;
            };
            // The deadline clock starts at admission, exactly as in the
            // synchronous path; queue wait counts against it.
            let deadline = self.ctx.request_deadline(parsed.deadline_ms);
            conn.pending += 1;
            self.dispatcher
                .as_ref()
                .expect("dispatcher lives while connections do")
                .submit(Pending { conn: id, route, req: parsed, deadline, permit: Some(permit) });
        }

        /// Route finished responses to their connections. A completion
        /// whose connection has since closed is dropped — its admission
        /// permit already released when the `Pending` dropped.
        fn apply_completions(&mut self) {
            self.scratch.clear();
            if let Some(dispatcher) = self.dispatcher.as_ref() {
                dispatcher.drain_completions(&mut self.scratch);
            }
            if self.scratch.is_empty() {
                return;
            }
            let completions = std::mem::take(&mut self.scratch);
            for (id, response) in &completions {
                if let Some(conn) = self.conns.get_mut(id) {
                    conn.pending -= 1;
                    conn.enqueue_response(response);
                }
            }
            for (id, _) in &completions {
                self.flush_and_rearm(*id);
            }
            // Keep the allocation for the next drain.
            self.scratch = completions;
        }

        /// Flush the outbox, re-arm epoll interest to match the new
        /// state, and close the connection if it is finished (or dead).
        fn flush_and_rearm(&mut self, id: u64) {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            let fd = conn.stream.as_raw_fd();
            match conn.flush() {
                Err(_) => self.close_conn(id),
                Ok(drained) => {
                    if conn.read_closed && conn.done() {
                        self.close_conn(id);
                        return;
                    }
                    let want_write = !drained;
                    // Read interest drops after the peer half-closes
                    // (a level-triggered EOF would fire forever) and
                    // while the outbox is over cap (backpressure: the
                    // client must drain responses before the loop
                    // reads more requests); it re-arms as completions
                    // flush the outbox back under the cap.
                    let want_read = !conn.read_closed && conn.outbox.len() <= self.cfg.outbox_cap;
                    if (conn.want_write != want_write || conn.want_read != want_read)
                        && self.epoll.modify(fd, id, want_read, want_write).is_ok()
                    {
                        conn.want_read = want_read;
                        conn.want_write = want_write;
                    }
                }
            }
        }

        fn close_conn(&mut self, id: u64) {
            if let Some(conn) = self.conns.remove(&id) {
                let _ = self.epoll.del(conn.stream.as_raw_fd());
            }
        }
    }
}
