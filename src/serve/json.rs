//! The protocol's JSON subset: a hand-rolled, depth-capped parser and
//! the string escaper the response renderers share. The workspace
//! vendors no JSON crate, so this is the whole of it — objects, arrays,
//! strings (with escapes), numbers, booleans, null, duplicate keys
//! rejected at parse time.

/// Maximum nesting depth the JSON parser accepts. Protocol values are
/// at most two levels deep; the cap exists so a hostile line of
/// `[[[[…` fails with a parse error instead of exhausting the thread
/// stack (stack overflow aborts the whole process — `catch_unwind`
/// cannot contain it).
const MAX_JSON_DEPTH: u32 = 64;

/// A parsed JSON value (the subset the protocol needs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as f64 (ids and counts fit exactly).
    Num(f64),
    /// A (de-escaped) string.
    Str(String),
    /// An array of values.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs (duplicate keys rejected at
    /// parse time).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON value; trailing non-whitespace is an
    /// error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), at: 0, depth: 0 };
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.at));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer that fits `u64` exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
    depth: u32,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.at).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.at))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.nested(Parser::array),
            b'{' => self.nested(Parser::object),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected {:?} at offset {}", other as char, self.at)),
        }
    }

    /// Run a container parse one nesting level deeper, enforcing
    /// [`MAX_JSON_DEPTH`]. Recursion in this parser is bounded only by
    /// input nesting, so the cap is what keeps `[[[[…` from blowing the
    /// thread stack.
    fn nested(&mut self, parse: fn(&mut Self) -> Result<Json, String>) -> Result<Json, String> {
        if self.depth >= MAX_JSON_DEPTH {
            return Err(format!("nesting deeper than {MAX_JSON_DEPTH} at offset {}", self.at));
        }
        self.depth += 1;
        let result = parse(self);
        self.depth -= 1;
        result
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while let Some(&b) = self.bytes.get(self.at) {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.at += 1;
            } else {
                break;
            }
        }
        // The matched bytes are all ASCII, so this conversion cannot
        // fail — but the serving loop must never panic on client
        // bytes, so the impossible case degrades to a parse error.
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| format!("bad number bytes at offset {start}"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.at) else {
                return Err("unterminated string".to_string());
            };
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.at) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            self.at += 4;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // Surrogates (rare in topic queries) are
                            // replaced rather than paired — the protocol
                            // carries no user text where this matters.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.at - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or("invalid utf-8 in string")?;
                    out.push_str(chunk);
                    self.at = start + len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.at += 1,
                b']' => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {:?}", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        if self.peek()? == b'}' {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.at += 1,
                b'}' => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {:?}", other as char)),
            }
        }
    }
}

/// Escape a string for embedding in a JSON response.
pub(crate) fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_scalar_round_trips() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse(r#""hi\nthere""#).unwrap(), Json::Str("hi\nthere".to_string()));
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::Str("A".to_string()));
        assert_eq!(Json::parse(r#""héllo""#).unwrap(), Json::Str("héllo".to_string()));
    }

    #[test]
    fn json_compound_values() {
        let v = Json::parse(r#"{"a": [1, 2], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Str("d".to_string())));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn json_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "{\"a\":1,\"a\":2}", "\"x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
