//! Thin Linux syscall bindings for the epoll front end — the same
//! no-deps discipline as `kbtim-storage`'s mmap shim: raw `extern "C"`
//! declarations of exactly the calls used, constants copied from the
//! kernel ABI, and RAII wrappers so a dropped loop never leaks a file
//! descriptor. Linux-only; the portable fallback is the
//! thread-per-connection front end in [`super::threads`].

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::raw::{c_int, c_uint};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};

// Kernel ABI constants (uapi/linux/eventpoll.h, sys/eventfd.h).
const EPOLL_CLOEXEC: c_int = 0x80000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;
const EFD_NONBLOCK: c_int = 0x800;
const EFD_CLOEXEC: c_int = 0x80000;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn listen(sockfd: c_int, backlog: c_int) -> c_int;
}

/// One readiness event. Packed on x86-64 (the kernel ABI packs it
/// there); natural layout elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub(crate) struct EpollEvent {
    /// `EPOLLIN` / `EPOLLOUT` / error bits.
    pub events: u32,
    /// The caller's token, returned verbatim (the loop uses connection
    /// ids).
    pub token: u64,
}

/// An `epoll(7)` instance. The fd is owned through a `File` so it
/// closes on drop without a dedicated `close(2)` extern.
pub(crate) struct Epoll {
    file: File,
}

impl Epoll {
    pub(crate) fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 has no memory preconditions; a valid
        // new fd (or -1) comes back, and File takes sole ownership.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { file: unsafe { File::from_raw_fd(fd) } })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, token };
        // SAFETY: `ev` outlives the call (the kernel copies it) and the
        // epoll fd is valid for self's lifetime.
        let rc = unsafe { epoll_ctl(self.file.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Watch `fd` (level-triggered) for readability. Write interest is
    /// re-armed later via [`Epoll::modify`] as the outbox fills and
    /// drains.
    pub(crate) fn add(&self, fd: RawFd, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest(true, false), token)
    }

    /// Re-arm `fd` with new interest: `readable` goes false once the
    /// peer half-closes (a level-triggered EOF would otherwise fire
    /// forever), `writable` toggles with the outbox. Error/hang-up
    /// events are always delivered, even with both off.
    pub(crate) fn modify(
        &self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest(readable, writable), token)
    }

    /// Stop watching `fd`.
    pub(crate) fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait up to `timeout_ms` for events. A signal interrupting the
    /// wait (`EINTR`) reports zero events — the caller's loop polls the
    /// termination latch right after, which is exactly why the wait
    /// carries a timeout at all.
    pub(crate) fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the out-buffer is valid for `events.len()` entries
        // and the kernel writes at most that many.
        let rc = unsafe {
            epoll_wait(
                self.file.as_raw_fd(),
                events.as_mut_ptr(),
                events.len() as c_int,
                timeout_ms,
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            return if err.kind() == io::ErrorKind::Interrupted { Ok(0) } else { Err(err) };
        }
        Ok(rc as usize)
    }
}

fn interest(readable: bool, writable: bool) -> u32 {
    (if readable { EPOLLIN | EPOLLRDHUP } else { 0 }) | (if writable { EPOLLOUT } else { 0 })
}

/// An `eventfd(2)` wake-up channel: workers signal it when a completed
/// response is ready, unblocking the event loop's `epoll_wait`.
pub(crate) struct EventFd {
    file: File,
}

impl EventFd {
    pub(crate) fn new() -> io::Result<EventFd> {
        // SAFETY: no memory preconditions; File takes sole ownership of
        // the returned fd.
        let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { file: unsafe { File::from_raw_fd(fd) } })
    }

    pub(crate) fn as_raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Wake the loop. A saturated counter (`WouldBlock`) is already a
    /// pending wake-up, so it is not an error.
    pub(crate) fn signal(&self) {
        let _ = (&self.file).write_all(&1u64.to_ne_bytes());
    }

    /// Consume pending wake-ups so level-triggered epoll stops
    /// reporting the fd readable.
    pub(crate) fn drain(&self) {
        let mut buf = [0u8; 8];
        while (&self.file).read_exact(&mut buf).is_ok() {}
    }
}

/// Re-issue `listen(2)` on an already-listening socket to set its
/// accept backlog — `std::net::TcpListener` offers no backlog knob, and
/// a burst of thousands of advertisers connecting at once overflows the
/// default.
pub(crate) fn set_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
    // SAFETY: plain syscall on a valid listening socket fd.
    let rc = unsafe { listen(fd, backlog) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_signals_and_drains() {
        let efd = EventFd::new().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(efd.as_raw_fd(), 7).unwrap();

        // Nothing signalled yet: a zero-timeout wait reports nothing.
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        efd.signal();
        efd.signal();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        let (got_events, token) = (events[0].events, events[0].token);
        assert_eq!(token, 7);
        assert_ne!(got_events & EPOLLIN, 0);

        // Drained: level-triggered readiness goes away.
        efd.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        epoll.del(efd.as_raw_fd()).unwrap();
    }
}
