//! The epoll front end's execution stage: admitted requests flow from
//! the event loop into a fair queue, a fixed worker pool dequeues
//! per-(connection × index) windows, runs them through the engine, and
//! hands rendered responses back over a waker-coupled completion queue.
//!
//! Fairness: the queue keys work on `(connection, route)` and rotates a
//! ring of keys, taking one request per key per pass. A client that
//! pipelines 1000 requests gets exactly one slot per rotation, the same
//! as a client with one request — so a firehose connection cannot
//! starve the others, and no index monopolizes the workers just
//! because its clients are chattier.
//!
//! Batching: when the engine has a batch window configured, a worker
//! dequeues a whole *window* of same-route requests (the fair rotation
//! bounded by the planner's cap) and executes it via
//! [`QueryEngine::query_window`] — the ready queue has already
//! collected the concurrency a condvar admission window would wait
//! for, which is what lets the batch leader stop sleeping (the
//! `BENCH_batch.json` 1-client regression this PR retires).

use super::{
    execute_rendered, render_result, OwnedPermit, Router, ServeCtx, ServeOp, ServeRequest,
};
use kbtim_exec::CompletionQueue;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Planner cap reused as the dequeue window size when the engine
/// batches (mirrors the `Batcher::max_requests` default).
const BATCH_WINDOW_MAX: usize = 64;

/// One admitted request travelling from the event loop to a worker.
pub(crate) struct Pending {
    /// Connection the response goes back to.
    pub conn: u64,
    /// Route id ([`Router::resolve`]) — the engine that answers.
    pub route: usize,
    /// The parsed request.
    pub req: ServeRequest,
    /// Effective deadline, computed at admission.
    pub deadline: Option<Instant>,
    /// The admission slot; released when this struct drops (response
    /// enqueued, or the dispatcher dropped the request on shutdown).
    #[allow(dead_code)] // held for its Drop
    pub permit: Option<OwnedPermit>,
}

/// The per-(connection × route) fair queue. Not thread-safe by itself;
/// [`Dispatcher`] wraps it in a mutex.
#[derive(Default)]
pub(crate) struct FairQueue {
    /// Rotation ring of keys with non-empty queues, in arrival order.
    keys: VecDeque<(u64, usize)>,
    queues: HashMap<(u64, usize), VecDeque<Pending>>,
    len: usize,
}

impl FairQueue {
    pub(crate) fn push(&mut self, item: Pending) {
        let key = (item.conn, item.route);
        let queue = self.queues.entry(key).or_default();
        if queue.is_empty() {
            self.keys.push_back(key);
        }
        queue.push_back(item);
        self.len += 1;
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The route the next dequeue will serve (the front key's).
    fn front_route(&self) -> Option<usize> {
        self.keys.front().map(|&(_, route)| route)
    }

    /// Dequeue up to `max` requests of one route — the front key's, so
    /// head-of-line order decides which index runs next. Each rotation
    /// pass takes at most one request per key, so every connection
    /// queued on this route contributes before any contributes twice;
    /// keys of other routes keep their ring position.
    pub(crate) fn pop_window(&mut self, max: usize) -> Vec<Pending> {
        let mut out = Vec::new();
        let Some(route) = self.front_route() else {
            return out;
        };
        loop {
            let ring = self.keys.len();
            if ring == 0 || out.len() >= max {
                break;
            }
            let mut took = false;
            for _ in 0..ring {
                if out.len() >= max {
                    break;
                }
                let key = self.keys.pop_front().expect("ring length checked");
                if key.1 == route {
                    let queue = self.queues.get_mut(&key).expect("ring key has a queue");
                    out.push(queue.pop_front().expect("ring queues are non-empty"));
                    self.len -= 1;
                    took = true;
                    if queue.is_empty() {
                        self.queues.remove(&key);
                        continue; // key leaves the ring
                    }
                }
                self.keys.push_back(key);
            }
            if !took {
                break; // only other routes remain queued
            }
        }
        out
    }
}

struct Shared {
    queue: Mutex<FairQueue>,
    ready: Condvar,
    stop: AtomicBool,
    /// Set when the drain grace expired: workers exit without draining
    /// what is still queued (the queued `Pending`s are dropped by
    /// [`Dispatcher::stop_and_join`], releasing their permits).
    abandon: AtomicBool,
    completions: CompletionQueue<(u64, String)>,
    router: Arc<Router>,
    ctx: Arc<ServeCtx>,
}

/// The worker pool bridging the event loop and the engines.
pub(crate) struct Dispatcher {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Dispatcher {
    /// Spawn `workers` threads (min 1). `waker` runs after every
    /// completed response lands — the event loop passes its eventfd
    /// signal so `epoll_wait` wakes.
    pub(crate) fn new(
        router: Arc<Router>,
        ctx: Arc<ServeCtx>,
        workers: usize,
        waker: impl Fn() + Send + Sync + 'static,
    ) -> Dispatcher {
        let shared = Arc::new(Shared {
            queue: Mutex::new(FairQueue::default()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
            abandon: AtomicBool::new(false),
            completions: CompletionQueue::new(waker),
            router,
            ctx,
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("kbtim-serve-{i}"))
                    .spawn(move || worker_main(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Dispatcher { shared, workers }
    }

    /// Hand one admitted request to the pool.
    pub(crate) fn submit(&self, item: Pending) {
        let mut queue = self.shared.queue.lock().expect("dispatch queue poisoned");
        queue.push(item);
        drop(queue);
        self.shared.ready.notify_one();
    }

    /// Move every finished `(conn, response)` pair into `out`.
    pub(crate) fn drain_completions(&self, out: &mut Vec<(u64, String)>) -> usize {
        self.shared.completions.drain_into(out)
    }

    /// Requests queued but not yet picked up by a worker.
    pub(crate) fn queued(&self) -> usize {
        self.shared.queue.lock().expect("dispatch queue poisoned").len()
    }

    /// Stop the workers. With `finish_queued` (a clean drain: nothing
    /// was pending when the loop decided to exit), workers first
    /// finish everything still queued and are joined; completions
    /// pushed during the drain still reach
    /// [`Dispatcher::drain_completions`] afterwards.
    ///
    /// Without it — the drain grace expired — the queued `Pending`s
    /// are dropped on the spot (counted as shed; their admission
    /// permits release), workers exit after at most their current
    /// window, and they are detached rather than joined: a query
    /// wedged inside the engine must not pin shutdown past the grace,
    /// exactly as the threads front end's detached handlers cannot.
    pub(crate) fn stop_and_join(&mut self, finish_queued: bool) {
        if !finish_queued {
            self.shared.abandon.store(true, Ordering::SeqCst);
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.ready.notify_all();
        if finish_queued {
            for worker in self.workers.drain(..) {
                let _ = worker.join();
            }
        } else {
            self.workers.clear();
            let abandoned =
                std::mem::take(&mut *self.shared.queue.lock().expect("dispatch queue poisoned"));
            for _ in 0..abandoned.len() {
                self.shared.ctx.count_shed();
            }
            // Dropping the queue drops its Pendings, releasing their
            // admission permits.
            drop(abandoned);
        }
    }
}

fn worker_main(shared: &Shared) {
    loop {
        let window = {
            let mut queue = shared.queue.lock().expect("dispatch queue poisoned");
            loop {
                if shared.abandon.load(Ordering::SeqCst) {
                    return; // grace expired: leave the queue for stop_and_join to drop
                }
                if !queue.is_empty() {
                    break;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return; // queue drained, shutdown requested
                }
                queue = shared.ready.wait(queue).expect("dispatch queue poisoned");
            }
            let route = queue.front_route().expect("non-empty queue has a front");
            // A batching engine profits from whole windows; without a
            // window the engine coalesces per request and a window of 1
            // preserves the PR-7 execution path exactly.
            let max = if shared.router.engine_at(route).batch_window().is_some() {
                BATCH_WINDOW_MAX
            } else {
                1
            };
            queue.pop_window(max)
        };
        execute_window(shared, window);
    }
}

/// Run one dequeued window and push its responses. Every `Pending` is
/// answered exactly once; permits release as the items drop.
fn execute_window(shared: &Shared, window: Vec<Pending>) {
    debug_assert!(!window.is_empty(), "workers only dequeue non-empty windows");
    let route = window[0].route;
    let engine = shared.router.engine_at(route);
    let ctx = &shared.ctx;

    // Non-batching engines take the PR-7 per-request path unchanged
    // (window size is pinned to 1 for them — coalescing happens in the
    // engine). Batching engines must NOT: `execute_rendered` would
    // route into the planner's condvar admission window, and with
    // several workers the elected leader always finds company pending
    // and sleeps out the full window per request. The ready queue
    // already collected the concurrency — `query_window` runs the
    // batch directly, even a batch of one.
    if window.len() == 1 && engine.batch_window().is_none() {
        let item = &window[0];
        let rendered = execute_rendered(engine, ctx, &item.req, item.deadline);
        shared.completions.push((item.conn, rendered));
        return;
    }

    // Split out requests already expired at dequeue — the same
    // admission-expiry check `execute_rendered` applies — then run the
    // rest as one shared batch. Mutation ops never batch: each runs on
    // its own through the per-request path (serialized on the delta
    // tier's writer lane), so a window mixing queries and writes
    // answers both correctly.
    let now = Instant::now();
    let mut live: Vec<&Pending> = Vec::with_capacity(window.len());
    for item in &window {
        if !matches!(item.req.op, ServeOp::Query) {
            let rendered = execute_rendered(engine, ctx, &item.req, item.deadline);
            shared.completions.push((item.conn, rendered));
        } else if item.deadline.is_some_and(|d| now >= d) {
            ctx.count_expired();
            shared.completions.push((
                item.conn,
                super::render_error(
                    item.req.id,
                    "deadline_exceeded",
                    "deadline expired at admission",
                    ctx.front_end(),
                ),
            ));
        } else {
            live.push(item);
        }
    }
    if live.is_empty() {
        return;
    }

    let requests: Vec<_> =
        live.iter().map(|item| (item.req.request.clone(), item.deadline)).collect();
    match catch_unwind(AssertUnwindSafe(|| engine.query_window(&requests))) {
        Ok(results) => {
            for (item, result) in live.iter().zip(results) {
                let rendered = render_result(engine, ctx, &item.req, Ok(result));
                shared.completions.push((item.conn, rendered));
            }
        }
        Err(_) => {
            // The whole window shares the execution, so the whole
            // window shares the containment: each request gets the
            // structured panic response its connection expects.
            for item in &live {
                let rendered = render_result(
                    engine,
                    ctx,
                    &item.req,
                    Err(Box::new(()) as Box<dyn std::any::Any + Send>),
                );
                shared.completions.push((item.conn, rendered));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbtim_index::{Algo, EngineRequest};

    fn pending(conn: u64, route: usize, tag: u32) -> Pending {
        Pending {
            conn,
            route,
            req: ServeRequest {
                id: Some(tag as u64),
                index: None,
                deadline_ms: None,
                op: ServeOp::Query,
                request: EngineRequest { topics: vec![tag], k: 1, algo: Algo::Auto },
            },
            deadline: None,
            permit: None,
        }
    }

    fn tags(window: &[Pending]) -> Vec<(u64, u32)> {
        window.iter().map(|p| (p.conn, p.req.request.topics[0])).collect()
    }

    #[test]
    fn fair_queue_rotates_across_connections() {
        let mut queue = FairQueue::default();
        // Connection 1 floods route 0; connections 2 and 3 each queue one.
        for tag in 0..4 {
            queue.push(pending(1, 0, tag));
        }
        queue.push(pending(2, 0, 10));
        queue.push(pending(3, 0, 20));
        assert_eq!(queue.len(), 6);

        // One request per connection per rotation pass: the flooder
        // contributes one, then the others, then the flooder again.
        let window = queue.pop_window(4);
        assert_eq!(tags(&window), vec![(1, 0), (2, 10), (3, 20), (1, 1)]);
        let window = queue.pop_window(10);
        assert_eq!(tags(&window), vec![(1, 2), (1, 3)]);
        assert!(queue.is_empty());
        assert!(queue.pop_window(8).is_empty());
    }

    #[test]
    fn fair_queue_windows_are_single_route() {
        let mut queue = FairQueue::default();
        queue.push(pending(1, 0, 0));
        queue.push(pending(1, 1, 100));
        queue.push(pending(2, 0, 1));
        queue.push(pending(2, 1, 101));

        // Front key is (1, route 0): the window takes route 0 from both
        // connections and leaves route 1 queued.
        let window = queue.pop_window(10);
        assert_eq!(tags(&window), vec![(1, 0), (2, 1)]);
        assert_eq!(queue.len(), 2);

        // Next window serves route 1, preserving ring order.
        let window = queue.pop_window(10);
        assert_eq!(tags(&window), vec![(1, 100), (2, 101)]);
        assert!(queue.is_empty());
    }

    #[test]
    fn fair_queue_respects_window_cap() {
        let mut queue = FairQueue::default();
        for conn in 1..=3 {
            for tag in 0..3 {
                queue.push(pending(conn, 0, conn as u32 * 10 + tag));
            }
        }
        let window = queue.pop_window(2);
        assert_eq!(tags(&window), vec![(1, 10), (2, 20)]);
        assert_eq!(queue.len(), 7);
        // The interrupted rotation resumes where it left off.
        let window = queue.pop_window(100);
        assert_eq!(
            tags(&window),
            vec![(3, 30), (1, 11), (2, 21), (3, 31), (1, 12), (2, 22), (3, 32)]
        );
    }
}
