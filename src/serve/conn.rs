//! Per-connection state for the epoll front end: the nonblocking
//! stream, the incremental line framer feeding requests in, and the
//! bounded outbox draining responses out.

use super::framer::LineFramer;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::TcpStream;

/// One client connection multiplexed by the event loop. Addressed by a
/// monotonic connection id — the epoll token and the completion
/// address. Never an fd: fds are reused by the kernel the moment a
/// connection closes, and a stale completion must miss, not land on
/// whoever inherited the number.
pub(crate) struct Conn {
    /// The nonblocking stream.
    pub stream: TcpStream,
    /// Reassembles torn request lines across reads.
    pub framer: LineFramer,
    /// Bytes of rendered responses not yet accepted by the socket.
    pub outbox: VecDeque<u8>,
    /// Requests handed to the dispatcher whose responses have not yet
    /// been enqueued — the per-connection pipeline depth.
    pub pending: usize,
    /// Whether the connection is currently registered for `EPOLLIN`
    /// (mirrors the kernel-side interest so re-arms are cheap). Read
    /// interest drops while the outbox is over its cap — backpressure
    /// on a client that pipelines without reading — and after the peer
    /// half-closes.
    pub want_read: bool,
    /// Whether the connection is currently registered for `EPOLLOUT`
    /// (mirrors the kernel-side interest so re-arms are cheap).
    pub want_write: bool,
    /// The client half-closed (EOF / `EPOLLRDHUP`): no more requests
    /// will arrive; the connection closes once `pending` and the outbox
    /// both drain.
    pub read_closed: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, max_line: usize) -> Conn {
        Conn {
            stream,
            framer: LineFramer::new(max_line),
            outbox: VecDeque::new(),
            pending: 0,
            want_read: true,
            want_write: false,
            read_closed: false,
        }
    }

    /// Queue one rendered response line (newline appended) for writing.
    pub(crate) fn enqueue_response(&mut self, line: &str) {
        self.outbox.extend(line.as_bytes());
        self.outbox.push_back(b'\n');
    }

    /// Write as much of the outbox as the socket accepts right now.
    /// `Ok(true)` means fully drained; `Ok(false)` means the socket
    /// would block and `EPOLLOUT` should stay armed. Errors mean the
    /// connection is dead.
    pub(crate) fn flush(&mut self) -> io::Result<bool> {
        while !self.outbox.is_empty() {
            let (front, _) = self.outbox.as_slices();
            match self.stream.write(front) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.outbox.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Whether every accepted request has been answered and flushed —
    /// a half-closed connection may be dropped once this holds.
    pub(crate) fn done(&self) -> bool {
        self.pending == 0 && self.outbox.is_empty()
    }
}
