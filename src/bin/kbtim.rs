//! `kbtim` — command-line front end for the KB-TIM library.
//!
//! ```text
//! kbtim gen      --family news|twitter --users N [--topics T] [--seed S] --out DIR
//! kbtim stats    --graph FILE
//! kbtim build    --data DIR --out DIR [--model ic|lt] [--codec raw|packed]
//!                [--variant rr|irr] [--delta N] [--eps F] [--cap N] [--threads N]
//!                [--shards S]
//! kbtim query    --index DIR --topics 1,2,3 --k 30 [--algo rr|irr|auto]
//!                [--threads N] [--serving file|resident|mmap]
//! kbtim ingest   --index DIR --data DIR [--file F] [--flush on|off]
//!                [--eps F] [--cap N] [--seed S]
//! kbtim serve    --index [NAME=]DIR [--index NAME=DIR ...] [--listen HOST:PORT]
//!                [--front-end epoll|threads] [--max-conns N] [--backlog N]
//!                [--workers N] [--outbox-cap BYTES]
//!                [--threads N] [--serving file|resident|mmap] [--memory on|off]
//!                [--batch USEC] [--merge-cache ENTRIES] [--max-queue N]
//!                [--deadline-ms MS] [--max-line BYTES]
//!                [--data DIR] [--flush-watermark N] [--eps F] [--cap N] [--seed S]
//! kbtim validate --index DIR [--serving file|resident|mmap]
//!                [--data DIR] [--eps F] [--cap N] [--seed S]
//! ```
//!
//! `gen` writes `graph.txt` (SNAP edge list) and `profiles.tsv` into the
//! output directory; `build` reads that pair back, so datasets can also be
//! assembled by other tools in the same two formats.
//!
//! `ingest` applies line-JSON mutations (`{"op":"ingest_user"}`,
//! `{"op":"ingest_edge","from":U,"to":V}`,
//! `{"op":"set_topic_weight","user":U,"topic":T,"weight":W}` — the same
//! verbs the serve protocol accepts) to an index through its mutable
//! delta tier, and by default compacts the result into the next segment
//! generation. `--data` names the directory holding the dataset the
//! live generation was built from (`graph.txt` + `profiles.tsv`);
//! `--eps` / `--cap` / `--seed` must repeat the original build's values
//! so the compacted generation is bit-identical to a from-scratch
//! build.
//!
//! `serve` turns the index into an always-on query service speaking
//! line-delimited JSON (see [`kbtim::serve`]) over stdin/stdout, or over
//! TCP with `--listen`. On Linux the default TCP front end is a
//! hand-rolled epoll readiness loop (`--front-end epoll`): thousands of
//! connections multiplexed onto a fixed worker pool, with per-connection
//! request pipelining and `"id"`-matched responses. `--front-end
//! threads` selects the portable thread-per-connection loop (the only
//! option off Linux), all connections sharing one index through the
//! process-wide page cache.

use kbtim::core::theta::SamplingConfig;
use kbtim::datagen::{DatasetConfig, DatasetFamily};
use kbtim::graph::{io as graph_io, stats::graph_stats, Graph};
use kbtim::index::{
    IndexBuildConfig, IndexBuilder, IndexVariant, KbtimIndex, ServingMode, ThetaMode,
};
use kbtim::propagation::model::{IcModel, LtModel};
use kbtim::storage::IoStats;
use kbtim::topics::{io as topics_io, Query, UserProfiles};
use kbtim_codec::Codec;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let pairs = match parse_flags(rest) {
        Ok(pairs) => pairs,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    // Repeated flags: last occurrence wins for the scalar commands;
    // `serve` additionally reads the ordered pairs for repeatable
    // `--index`.
    let flags: HashMap<String, String> = pairs.iter().cloned().collect();
    let result = match command.as_str() {
        "gen" => cmd_gen(&flags),
        "stats" => cmd_stats(&flags),
        "build" => cmd_build(&flags),
        "query" => cmd_query(&flags),
        "ingest" => cmd_ingest(&flags),
        "serve" => cmd_serve(&flags, &pairs),
        "validate" => cmd_validate(&flags),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "kbtim — keyword-based targeted influence maximization

USAGE:
  kbtim gen      --family news|twitter --users N [--topics T] [--seed S] --out DIR
  kbtim stats    --graph FILE
  kbtim build    --data DIR --out DIR [--model ic|lt] [--codec raw|packed]
                 [--variant rr|irr] [--delta N] [--eps F] [--cap N] [--threads N]
                 [--shards S]
  kbtim query    --index DIR --topics 1,2,3 --k 30 [--algo rr|irr|auto]
                 [--threads N] [--serving file|resident|mmap]
  kbtim ingest   --index DIR --data DIR [--file F] [--flush on|off]
                 [--eps F] [--cap N] [--seed S]
  kbtim serve    --index [NAME=]DIR [--index NAME=DIR ...] [--listen HOST:PORT]
                 [--front-end epoll|threads] [--max-conns N] [--backlog N]
                 [--workers N] [--outbox-cap BYTES]
                 [--threads N] [--serving file|resident|mmap] [--memory on|off]
                 [--batch USEC] [--merge-cache ENTRIES] [--max-queue N]
                 [--deadline-ms MS] [--max-line BYTES]
                 [--data DIR] [--flush-watermark N] [--eps F] [--cap N] [--seed S]
  kbtim validate --index DIR [--serving file|resident|mmap]
                 [--data DIR] [--eps F] [--cap N] [--seed S]";

/// `--key value` pairs in argument order (repeats preserved — `serve`
/// accepts `--index` more than once).
fn parse_flags(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        let value = args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?;
        flags.push((key.to_string(), value.clone()));
        i += 2;
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags.get(key).map(String::as_str).ok_or_else(|| format!("missing --{key}"))
}

fn parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| format!("--{key}: cannot parse {raw:?}")),
    }
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<(), String> {
    let family = match required(flags, "family")? {
        "news" => DatasetFamily::News,
        "twitter" => DatasetFamily::Twitter,
        other => return Err(format!("--family must be news|twitter, got {other:?}")),
    };
    let users: u32 = required(flags, "users")?.parse().map_err(|_| "--users: bad number")?;
    let topics: u32 = parse(flags, "topics", 48)?;
    let seed: u64 = parse(flags, "seed", 42)?;
    let out = PathBuf::from(required(flags, "out")?);
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;

    let data = DatasetConfig::family(family).num_users(users).num_topics(topics).seed(seed).build();
    graph_io::write_edge_list(&data.graph, out.join("graph.txt")).map_err(|e| e.to_string())?;
    topics_io::write_profiles(&data.profiles, out.join("profiles.tsv"))
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} users, {} edges, {} topics) to {}",
        data.name,
        data.graph.num_nodes(),
        data.graph.num_edges(),
        topics,
        out.display()
    );
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = required(flags, "graph")?;
    let graph = graph_io::read_edge_list(path, None).map_err(|e| e.to_string())?;
    let s = graph_stats(&graph);
    println!("nodes:          {}", s.num_nodes);
    println!("edges:          {}", s.num_edges);
    println!("avg degree:     {:.2}", s.avg_degree);
    println!("max in-degree:  {}", s.max_in_degree);
    println!("max out-degree: {}", s.max_out_degree);
    Ok(())
}

fn load_data(dir: &Path) -> Result<(Graph, UserProfiles), String> {
    let graph = graph_io::read_edge_list(dir.join("graph.txt"), None).map_err(|e| e.to_string())?;
    let profiles = topics_io::read_profiles(dir.join("profiles.tsv")).map_err(|e| e.to_string())?;
    // Profiles fix |V|; the edge list may omit trailing isolated users.
    let graph = if graph.num_nodes() < profiles.num_users() {
        let edges: Vec<_> = graph.edges().collect();
        Graph::from_edges(profiles.num_users(), &edges)
    } else if graph.num_nodes() > profiles.num_users() {
        return Err(format!(
            "graph has {} nodes but profiles cover {} users",
            graph.num_nodes(),
            profiles.num_users()
        ));
    } else {
        graph
    };
    Ok((graph, profiles))
}

fn cmd_build(flags: &HashMap<String, String>) -> Result<(), String> {
    let data_dir = PathBuf::from(required(flags, "data")?);
    let out = PathBuf::from(required(flags, "out")?);
    let (graph, profiles) = load_data(&data_dir)?;

    let codec = match flags.get("codec").map(String::as_str).unwrap_or("packed") {
        "raw" => Codec::Raw,
        "packed" => Codec::Packed,
        other => return Err(format!("--codec must be raw|packed, got {other:?}")),
    };
    let delta: u32 = parse(flags, "delta", 100)?;
    let variant = match flags.get("variant").map(String::as_str).unwrap_or("irr") {
        "rr" => IndexVariant::Rr,
        "irr" => IndexVariant::Irr { partition_size: delta },
        other => return Err(format!("--variant must be rr|irr, got {other:?}")),
    };
    let eps: f64 = parse(flags, "eps", 0.5)?;
    let cap: u64 = parse(flags, "cap", 100_000)?;
    // 0 = the machine's available parallelism (same convention as
    // `query --threads`); index bytes are identical either way.
    let threads: usize = match parse(flags, "threads", 8)? {
        0 => kbtim_exec::ExecPool::new(None).threads(),
        n => n,
    };
    let seed: u64 = parse(flags, "seed", 42)?;
    // Number of user-range shards to partition the segments into.
    // Queries over any shard count return bit-identical answers; serving
    // auto-detects the layout, so this is purely a scale-out knob.
    let shards: usize = parse(flags, "shards", 1)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let sampling = SamplingConfig {
        eps,
        theta_cap: if cap == 0 { None } else { Some(cap) },
        ..SamplingConfig::fast()
    };
    let config = IndexBuildConfig {
        sampling,
        codec,
        theta_mode: ThetaMode::Compact,
        variant,
        threads,
        seed,
        shards,
    };

    let model_name = flags.get("model").map(String::as_str).unwrap_or("ic");
    let report = match model_name {
        "ic" => {
            let model = IcModel::weighted_cascade(&graph);
            IndexBuilder::new(&model, &profiles, config).build(&out)
        }
        "lt" => {
            let mut rng = SmallRng::seed_from_u64(seed);
            let model = LtModel::random_weights(&graph, &mut rng);
            IndexBuilder::new(&model, &profiles, config).build(&out)
        }
        other => return Err(format!("--model must be ic|lt, got {other:?}")),
    }
    .map_err(|e| e.to_string())?;

    println!(
        "built index at {}: {} RR sets across {} keywords in {} shard(s), \
         {:.1} MiB in {:.2?}",
        out.display(),
        report.total_theta,
        report.keywords.len(),
        shards,
        report.total_bytes as f64 / (1024.0 * 1024.0),
        report.elapsed
    );
    Ok(())
}

fn serving_mode(flags: &HashMap<String, String>) -> Result<ServingMode, String> {
    let raw = flags.get("serving").map(String::as_str).unwrap_or("file");
    ServingMode::parse(raw)
        .ok_or_else(|| format!("--serving must be file|resident|mmap, got {raw:?}"))
}

fn cmd_query(flags: &HashMap<String, String>) -> Result<(), String> {
    let dir = required(flags, "index")?;
    let topics: Vec<u32> = required(flags, "topics")?
        .split(',')
        .map(|t| t.trim().parse().map_err(|_| format!("bad topic id {t:?}")))
        .collect::<Result<_, _>>()?;
    let k: u32 = parse(flags, "k", 30)?;
    let algo = flags.get("algo").map(String::as_str).unwrap_or("irr");
    let threads: usize = parse(flags, "threads", 0)?;
    let mode = serving_mode(flags)?;

    let mut index = KbtimIndex::open_with(dir, IoStats::new(), mode).map_err(|e| e.to_string())?;
    // 0 (the default) = use the machine's available parallelism; the
    // answer is identical either way.
    if threads > 0 {
        index.set_threads(Some(threads));
    }
    let query = Query::new(topics, k);
    let outcome = match algo {
        "rr" => index.query_rr(&query),
        "irr" => index.query_irr(&query),
        "auto" => index.query_auto(&query),
        other => return Err(format!("--algo must be rr|irr|auto, got {other:?}")),
    }
    .map_err(|e| e.to_string())?;

    println!("seeds: {:?}", outcome.seeds);
    println!("marginal coverage: {:?}", outcome.marginal_gains);
    println!("estimated targeted influence: {:.2}", outcome.estimated_influence);
    println!(
        "theta_q {}, rr sets loaded {}, reads {}, bytes {}, \
         cache hits {}, bytes served {}, time {:.2?} (serving {})",
        outcome.stats.theta_q,
        outcome.stats.rr_sets_loaded,
        outcome.stats.io.read_ops,
        outcome.stats.io.bytes_read,
        outcome.stats.io.cache_hits,
        outcome.stats.io.bytes_served,
        outcome.stats.elapsed,
        index.serving_mode(),
    );
    Ok(())
}

/// The build config a delta tier needs to re-materialize keywords
/// bit-identically to the base index's own build: codec/variant/shards
/// come from the base itself, the sampling knobs and seed from flags
/// that must repeat the original `kbtim build` invocation (`--eps`,
/// `--cap`, `--seed` — same defaults as `build`).
fn delta_config(
    flags: &HashMap<String, String>,
    index: &KbtimIndex,
) -> Result<IndexBuildConfig, String> {
    let eps: f64 = parse(flags, "eps", 0.5)?;
    let cap: u64 = parse(flags, "cap", 100_000)?;
    let seed: u64 = parse(flags, "seed", 42)?;
    let sampling = SamplingConfig {
        eps,
        theta_cap: if cap == 0 { None } else { Some(cap) },
        ..SamplingConfig::fast()
    };
    Ok(IndexBuildConfig {
        sampling,
        codec: index.meta().codec,
        theta_mode: ThetaMode::Compact,
        variant: index.meta().variant,
        threads: 8, // index bytes are identical at any thread count
        seed,
        shards: index.num_shards(),
    })
}

/// Attach a mutable delta tier over `index`. The logical dataset comes
/// from the live generation directory when one exists (flush rewrites
/// `graph.txt` + `profiles.tsv` there); a generation-0 (flat) index has
/// no embedded dataset, so `--data` supplies it.
fn attach_delta(
    flags: &HashMap<String, String>,
    index: &std::sync::Arc<KbtimIndex>,
    data_flag: &str,
) -> Result<kbtim::index::DeltaIndex, String> {
    use kbtim::index::DeltaIndex;
    let data_dir =
        if index.generation() > 0 { index.dir().to_path_buf() } else { PathBuf::from(data_flag) };
    let (graph, profiles) = load_data(&data_dir)?;
    let config = delta_config(flags, index)?;
    DeltaIndex::attach(std::sync::Arc::clone(index), &graph, &profiles, config)
        .map_err(|e| e.to_string())
}

fn cmd_ingest(flags: &HashMap<String, String>) -> Result<(), String> {
    use kbtim::index::PageCache;
    use kbtim::serve::{ServeOp, ServeRequest};
    use std::io::BufRead;
    use std::sync::Arc;

    let dir = required(flags, "index")?;
    let data = required(flags, "data")?;
    let mode = serving_mode(flags)?;
    let flush = match flags.get("flush").map(String::as_str).unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => return Err(format!("--flush must be on|off, got {other:?}")),
    };
    let index = Arc::new(
        KbtimIndex::open_shared(dir, IoStats::new(), mode, PageCache::global())
            .map_err(|e| e.to_string())?,
    );
    let delta = attach_delta(flags, &index, data)?;
    let replayed = delta.unflushed();

    // Mutation lines come from --file or stdin: the same line-JSON verbs
    // the serve protocol accepts, minus query/flush.
    let lines: Box<dyn Iterator<Item = std::io::Result<String>>> = match flags.get("file") {
        Some(path) => {
            let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
            Box::new(std::io::BufReader::new(file).lines())
        }
        None => Box::new(std::io::stdin().lock().lines()),
    };
    let mut mutations = Vec::new();
    for (at, line) in lines.enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed = ServeRequest::parse(line).map_err(|e| format!("line {}: {e}", at + 1))?;
        match parsed.op {
            ServeOp::Mutate(m) => mutations.push(m),
            other => {
                return Err(format!(
                    "line {}: op {:?} is not a mutation (ingest accepts \
                     ingest_user / ingest_edge / set_topic_weight)",
                    at + 1,
                    other.name()
                ))
            }
        }
    }
    delta.apply(&mutations).map_err(|e| e.to_string())?;
    let stats = delta.stats();
    if flush {
        let flushed = delta.flush().map_err(|e| e.to_string())?;
        println!(
            "ingested {} mutation(s) ({} replayed from the journal): \
             flushed segment generation {} ({} users, {} edges, {} profile entries)",
            mutations.len(),
            replayed,
            flushed,
            stats.num_users,
            stats.num_edges,
            stats.num_entries,
        );
    } else {
        println!(
            "ingested {} mutation(s) ({} replayed from the journal): \
             journaled, unflushed={} at mutation generation {} \
             ({} users, {} edges, {} profile entries)",
            mutations.len(),
            replayed,
            delta.unflushed(),
            delta.generation(),
            stats.num_users,
            stats.num_edges,
            stats.num_entries,
        );
    }
    Ok(())
}

/// Whether stdin is a pipe or socket — the channels where EOF is a
/// deliberate drain signal from a supervisor. A daemonized server with
/// stdin on `/dev/null` (a character device, always at EOF) must NOT
/// treat that instant EOF as "drain now", which it historically did
/// (the caveat `docs/OPERATIONS.md` used to carry). A TTY stdin is
/// also excluded: interactive operators stop a server with Ctrl-C
/// (SIGINT), which still drains.
fn stdin_is_pipe() -> bool {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileTypeExt;
        if let Ok(meta) = std::fs::metadata("/proc/self/fd/0") {
            let ft = meta.file_type();
            return ft.is_fifo() || ft.is_socket();
        }
    }
    // No /proc (or not Unix): keep the historic stdin-EOF drain
    // contract rather than silently dropping a shutdown channel.
    true
}

fn cmd_serve(flags: &HashMap<String, String>, pairs: &[(String, String)]) -> Result<(), String> {
    use kbtim::index::{PageCache, QueryEngine};
    use kbtim::serve::{
        handle_line_ctx, read_bounded_line, render_error, serve_epoll, serve_threads, term_signal,
        EpollConfig, LineRead, Router, ServeCtx,
    };
    use std::io::Write;
    use std::sync::Arc;
    use std::time::Duration;

    // Repeatable routing flag: `--index name=dir` serves many indexes
    // from one process (the first is the default route); a bare
    // `--index dir` keeps the single-index form under the name
    // "default". Only a *simple* name before the first '=' counts as a
    // route name, so directory paths that happen to contain '='
    // (`--index /data/run=3/idx`) still parse as bare directories.
    let is_route_name = |s: &str| {
        !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || "_-.".contains(c))
    };
    let indexes: Vec<(String, String)> = pairs
        .iter()
        .filter(|(k, _)| k == "index")
        .map(|(_, v)| match v.split_once('=') {
            Some((name, dir)) if is_route_name(name) && !dir.is_empty() => {
                Ok((name.to_string(), dir.to_string()))
            }
            Some((name, _)) if is_route_name(name) => {
                Err(format!("--index {v:?}: expected name=dir"))
            }
            _ => Ok(("default".to_string(), v.clone())),
        })
        .collect::<Result<_, _>>()?;
    if indexes.is_empty() {
        return Err("missing --index".to_string());
    }
    // A serving tier wants resident pages by default: mmap shares them
    // with the kernel cache (and falls back to `resident` off Linux).
    let raw_mode = flags.get("serving").map(String::as_str).unwrap_or("mmap");
    let mode = ServingMode::parse(raw_mode)
        .ok_or_else(|| format!("--serving must be file|resident|mmap, got {raw_mode:?}"))?;
    // Per-query fan-out defaults to 1 under a server: client concurrency
    // is the parallelism, and inline queries keep latency predictable.
    // 0 = the machine's available parallelism, as elsewhere.
    let threads: usize = parse(flags, "threads", 1)?;
    let memory = match flags.get("memory").map(String::as_str).unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => return Err(format!("--memory must be on|off, got {other:?}")),
    };
    // Cross-request batch admission window in microseconds; 0 disables
    // the planner (identical-request coalescing still applies). The
    // default differs by transport: TCP serving defaults to 200 µs
    // (far below a query's own latency, and concurrent connections can
    // actually share decode work), while the stdin/stdout loop is
    // strictly serial — one request is read only after the previous
    // response is written — so a window there is pure added latency
    // and defaults to off. An explicit --batch overrides either way.
    let batch_default: u64 = if flags.contains_key("listen") { 200 } else { 0 };
    let batch_us: u64 = parse(flags, "batch", batch_default)?;
    let batch_window = (batch_us > 0).then(|| Duration::from_micros(batch_us));
    // Prepared-query cache: keep up to ENTRIES merged keyword unions
    // resident per engine, keyed by (keyword set, segment generation).
    // 0 (the default) disables it; each entry pins the merged RR arena
    // in memory, so the bound is entries, sized to the hot query set.
    let merge_cache: usize = parse(flags, "merge-cache", 0)?;
    // Overload control: at most this many requests in flight at once;
    // excess requests are shed immediately with an `overloaded` error
    // instead of queueing without bound. 0 sheds everything (only
    // useful in tests).
    let max_queue: usize = parse(flags, "max-queue", 1024)?;
    // Default per-request deadline in milliseconds; a request's own
    // `deadline_ms` field overrides it. 0 (the default) = no deadline.
    let deadline_ms: u64 = parse(flags, "deadline-ms", 0)?;
    // Per-connection request-line cap: a line longer than this is shed
    // with `bad_request` (and the stream resynced at the next newline)
    // instead of buffering a hostile newline-free stream without bound.
    let max_line: usize = parse(flags, "max-line", 1 << 20)?;
    if max_line == 0 {
        return Err("--max-line must be positive".to_string());
    }
    // TCP front end: `epoll` (Linux default — one event loop, pipelined
    // requests, fixed worker pool) or `threads` (portable, one thread
    // per connection). Off Linux, `epoll` falls back to `threads` with
    // a notice. Stdin mode is its own strictly-serial loop.
    let fe_flag = flags.get("front-end").map(String::as_str);
    if fe_flag.is_some() && !flags.contains_key("listen") {
        return Err("--front-end requires --listen".to_string());
    }
    let front_end: &'static str = match (flags.contains_key("listen"), fe_flag) {
        (false, _) => "stdin",
        (true, Some("threads")) => "threads",
        (true, None | Some("epoll")) => {
            if cfg!(target_os = "linux") {
                "epoll"
            } else {
                if fe_flag.is_some() {
                    eprintln!("kbtim serve: the epoll front end is Linux-only; using threads");
                }
                "threads"
            }
        }
        (true, Some(other)) => {
            return Err(format!("--front-end must be epoll|threads, got {other:?}"));
        }
    };
    // Epoll front-end knobs (ignored by the other front ends).
    let max_conns: usize = parse(flags, "max-conns", 4096)?;
    if max_conns == 0 {
        return Err("--max-conns must be positive".to_string());
    }
    let backlog: i32 = parse(flags, "backlog", 1024)?;
    if backlog <= 0 {
        return Err("--backlog must be positive".to_string());
    }
    // Query-execution workers of the epoll dispatcher; 0 = the
    // machine's available parallelism. Distinct from --threads, which
    // is the per-query fan-out *inside* the engine.
    let workers: usize = parse(flags, "workers", 0)?;
    // Per-connection unread-response cap in bytes; beyond it the loop
    // stops reading the connection until the client drains (TCP
    // backpressure), resuming once the outbox is back under the cap.
    let outbox_cap: usize = parse(flags, "outbox-cap", 256 * 1024)?;
    if outbox_cap == 0 {
        return Err("--outbox-cap must be positive".to_string());
    }
    // Mutable delta tier: `--data DIR` (single-index serving only)
    // attaches one, enabling the mutation verbs; `--flush-watermark N`
    // starts a background compaction job that flushes whenever that
    // many mutations are journaled (0, the default, flushes only on an
    // explicit `op:flush` and at drain).
    let data_flag = flags.get("data").map(String::as_str);
    let flush_watermark: u64 = parse(flags, "flush-watermark", 0)?;
    if data_flag.is_some() && indexes.len() > 1 {
        return Err("--data attaches a mutable tier to a single served index".to_string());
    }
    if flush_watermark > 0 && data_flag.is_none() {
        return Err("--flush-watermark requires --data".to_string());
    }
    let default_deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
    let ctx = Arc::new(ServeCtx::new(max_queue, default_deadline).with_front_end(front_end));
    term_signal::install();

    // Open every index through the process-wide page cache: indexes
    // sharing segment files (and any further open in this process —
    // another serve loop, a validator) share the resident pages.
    let mut router = Router::new();
    let mut delta: Option<Arc<kbtim::index::DeltaIndex>> = None;
    for (name, dir) in &indexes {
        let mut index = KbtimIndex::open_shared(dir, IoStats::new(), mode, PageCache::global())
            .map_err(|e| format!("index {name} ({dir}): {e}"))?;
        index.set_threads(if threads == 0 { None } else { Some(threads) });
        let index = Arc::new(index);
        let engine = if memory {
            QueryEngine::with_memory(Arc::clone(&index))
                .map_err(|e| format!("index {name} ({dir}): {e}"))?
        } else {
            QueryEngine::new(Arc::clone(&index))
        };
        let mut engine = engine.with_batch_window(batch_window).with_merge_cache(merge_cache);
        if let Some(data) = data_flag {
            let tier = Arc::new(
                attach_delta(flags, &index, data)
                    .map_err(|e| format!("index {name} ({dir}): {e}"))?,
            );
            engine = engine.with_delta(Arc::clone(&tier));
            delta = Some(tier);
        }
        router.add(name.clone(), Arc::new(engine))?;
    }
    let engine = router.engine(None).expect("at least one index");
    eprintln!(
        "kbtim serve: {} index(es) [{}] (front-end {front_end}, serving {}, shards {}, \
         threads {}, memory {}, batch {}, merge-cache {}, max-queue {}, deadline {}, \
         max-line {}, mutable {})",
        router.len(),
        router.names().collect::<Vec<_>>().join(", "),
        engine.index().serving_mode(),
        engine.index().num_shards(),
        threads,
        if engine.has_memory() { "on" } else { "off" },
        match batch_window {
            Some(w) => format!("{}us", w.as_micros()),
            None => "off".to_string(),
        },
        match merge_cache {
            0 => "off".to_string(),
            n => format!("{n} entries"),
        },
        max_queue,
        match deadline_ms {
            0 => "off".to_string(),
            ms => format!("{ms}ms"),
        },
        max_line,
        match (&delta, flush_watermark) {
            (None, _) => "off".to_string(),
            (Some(d), 0) => format!("gen {} (manual flush)", d.generation()),
            (Some(d), n) => format!("gen {} (flush watermark {n})", d.generation()),
        },
    );
    let router = Arc::new(router);

    // Background compaction job: flush whenever the journal crosses the
    // watermark. A flush is heavyweight next to a 100 ms poll, so
    // polling costs nothing measurable; a failed flush (transient I/O,
    // armed failpoint) retries on a later poll while the journal keeps
    // every mutation durable.
    let flusher_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flusher = match (&delta, flush_watermark) {
        (Some(tier), n) if n > 0 => {
            let tier = Arc::clone(tier);
            let stop = Arc::clone(&flusher_stop);
            Some(std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    if tier.unflushed() >= n {
                        let _ = tier.flush();
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            }))
        }
        _ => None,
    };

    match flags.get("listen") {
        None => {
            // stdin/stdout mode: one request line in, one response line
            // out, until EOF or SIGTERM. The loop is strictly serial,
            // so the termination latch is observed between requests.
            let stdin = std::io::stdin();
            let mut reader = stdin.lock();
            let mut stdout = std::io::stdout().lock();
            loop {
                if term_signal::pending() {
                    ctx.begin_shutdown();
                    break;
                }
                let read = read_bounded_line(&mut reader, max_line).map_err(|e| e.to_string())?;
                let response = match read {
                    LineRead::Eof => break,
                    LineRead::TooLong => render_error(
                        None,
                        "bad_request",
                        &format!("request line exceeds {max_line} bytes"),
                        ctx.front_end(),
                    ),
                    LineRead::Line(line) => {
                        let line = line.trim();
                        if line.is_empty() {
                            continue;
                        }
                        handle_line_ctx(&router, &ctx, line)
                    }
                };
                writeln!(stdout, "{response}").map_err(|e| e.to_string())?;
                stdout.flush().map_err(|e| e.to_string())?;
            }
            ctx.begin_shutdown();
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr).map_err(|e| e.to_string())?;
            eprintln!(
                "kbtim serve: listening on {}",
                listener.local_addr().map_err(|e| e.to_string())?
            );
            // stdin EOF also means drain (mirrors the stdin-mode
            // contract, and gives supervisors a portable shutdown
            // channel besides SIGTERM) — but only when stdin is a pipe
            // or socket, where EOF is a deliberate signal. A daemon
            // with stdin on /dev/null no longer drains at startup.
            let watch_stdin = stdin_is_pipe();
            let grace = Duration::from_secs(10);
            match front_end {
                "epoll" => {
                    let cfg = EpollConfig {
                        max_conns,
                        backlog,
                        workers,
                        outbox_cap,
                        max_line,
                        grace,
                        watch_stdin,
                        ..EpollConfig::default()
                    };
                    serve_epoll(listener, Arc::clone(&router), Arc::clone(&ctx), cfg)
                        .map_err(|e| e.to_string())?;
                }
                _ => {
                    serve_threads(
                        listener,
                        Arc::clone(&router),
                        Arc::clone(&ctx),
                        max_line,
                        watch_stdin,
                        grace,
                    )
                    .map_err(|e| e.to_string())?;
                }
            }
        }
    }

    flusher_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    if let Some(job) = flusher {
        let _ = job.join();
    }
    // Drain contract for a dirty delta tier: compact it inside the
    // drain window, or report what stays journaled (`unflushed=N`) for
    // the next attach to replay.
    let mut stats = ctx.stats_line();
    if let Some(tier) = &delta {
        if tier.flush().is_err() {
            stats.push_str(&format!(" unflushed={}", tier.unflushed()));
        }
    }
    eprintln!("kbtim serve: drained ({stats})");
    Ok(())
}

fn cmd_validate(flags: &HashMap<String, String>) -> Result<(), String> {
    let dir = required(flags, "index")?;
    let mode = serving_mode(flags)?;
    let index = KbtimIndex::open_with(dir, IoStats::new(), mode).map_err(|e| e.to_string())?;
    let report = index.validate().map_err(|e| e.to_string())?;
    println!(
        "ok: {} shard(s), {} keyword segments, {} RR sets, {} inverted entries, \
         {} partitions (model {}, {:?}, segment generation {})",
        report.shards_checked,
        report.keywords_checked,
        report.rr_sets_checked,
        report.il_entries_checked,
        report.partitions_checked,
        index.meta().model_name,
        index.meta().variant,
        index.generation(),
    );
    // `--data DIR` additionally validates the mutable tier: attach it
    // (replaying any journaled mutations), report its entry counts, and
    // structurally verify that the next flushed generation would equal
    // base ∪ delta — the catalog of a from-scratch build of the union
    // must be byte-identical to the union snapshot's.
    if let Some(data) = flags.get("data") {
        let index = std::sync::Arc::new(index);
        let delta = attach_delta(flags, &index, data)?;
        let stats = delta.stats();
        delta.verify().map_err(|e| format!("delta verification failed: {e}"))?;
        println!(
            "delta ok: unflushed={}, overlay keywords {}, union {} users / {} edges / \
             {} profile entries (mutation generation {}, flushed generation {}); \
             gen {} ≡ base ∪ delta verified structurally",
            stats.unflushed,
            stats.overlay_keywords,
            stats.num_users,
            stats.num_edges,
            stats.num_entries,
            stats.generation,
            stats.flushed_generation,
            stats.flushed_generation + 1,
        );
    }
    Ok(())
}
